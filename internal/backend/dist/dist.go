// Package dist is the distributed execution backend: an SPMD world whose
// message fabric spans OS processes connected by sockets.
//
// The paper's archetype claim is that one communication skeleton runs on
// many execution substrates. The sim and real backends prove it for two
// in-process substrates; this package makes the Transport seam cross
// address spaces. A run on the dist backend launches (or attaches to) N
// worker processes — one per rank — and routes every Send, Recv, and
// RecvAny (and therefore every collective, which is built from them)
// through those workers over length-prefixed frames.
//
// The data plane is destination-routed and push-all-the-way:
//
//	coordinator ── opSend ──> worker[dst]
//	coordinator <── opDeliver (eager push) ── worker[dst]
//
// A send travels down the destination rank's control connection; its
// worker pushes the body straight back up as an opDeliver, and the
// coordinator banks it in a per-rank inbox so Recv and RecvAny are local
// pops — one worker visit and two socket crossings per message, no
// request/response round trip per receive. (WithPeerRouting restores the
// source-routed path — coordinator → worker[src] → worker[dst] →
// coordinator — which exercises the worker↔worker fabric a multi-host
// deployment relies on.) Writers on every connection coalesce
// back-to-back frames into one multi-message opBatch frame and flush on
// idle; the receiving rank's own goroutine reads its control connection,
// so a delivery wakes it straight from the socket with no relay
// goroutine on the critical path. Self-spawned worlds speak the control
// protocol over unix-domain sockets (the peer plane stays TCP).
//
// Rank bodies execute as goroutines in the coordinating process (they are
// ordinary Go closures; shipping code is out of scope), but every payload
// genuinely leaves the coordinator's address space as spmd wire-codec
// bytes, crosses into a worker process, and is reconstructed on receive —
// the bit-identical parity table across sim/real/dist is the proof the
// codec and routing are faithful. (Self-sends short-circuit through the
// local inbox, still codec-encoded, exactly as the in-process backends
// deliver them locally.)
//
// Lifecycle: NewTransport spawns the workers (by default re-executing the
// current binary — see MaybeWorker — authenticated by a per-pool secret),
// collects their hellos, assigns ranks, and broadcasts the address book;
// all n ready frames complete the world-start barrier. Finish runs the
// mirror-image barrier (finish/bye), then releases the processes. With
// WithWorkerPool, cleanly finished workers — their control connections
// still warm — go back to a runner-owned pool, and the next world's start
// is a handshake on an existing connection instead of a process spawn.
// Messages and bytes are metered on the coordinator exactly as the
// in-process mailbox meters them, so cost accounting is identical across
// backends.
//
// Failure is fail-fast: cancelling the run's context, or any worker
// process dying mid-run, closes every control connection and every
// coordinator inbox; blocked receives unwind with the same cancellation
// sentinel the in-process mailbox raises, and the run returns an error
// instead of hanging. Failed worlds never return workers to the pool.
package dist

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// runner is the dist backend: a Transport factory whose configuration
// (spawn command or attach addresses, routing mode, handshake timeout)
// is fixed at construction. The registered default self-spawns localhost
// workers.
type runner struct {
	// attach lists pre-started worker control addresses (cmd/archworker
	// -listen); empty means self-spawn.
	attach []string
	// workerCmd overrides the spawned command (default: this binary,
	// relying on MaybeWorker). The coordinator address and world secret
	// travel in the environment either way.
	workerCmd []string
	// handshake bounds world start: every worker must hello and ready
	// within it.
	handshake time.Duration
	// inj is the fault-injection seam (nil injects nothing).
	inj *faultinject.Injector
	// relay selects source-routed sends (WithPeerRouting): messages
	// travel coordinator → worker[src] → worker[dst] → coordinator over
	// the worker↔worker data plane instead of the destination-direct
	// default.
	relay bool
	// pool, when non-nil, keeps cleanly finished self-spawned workers
	// (process + warm control connection) for the runner's next world.
	pool *workerPool
}

// Option configures a dist runner.
type Option func(*runner)

// WithWorkers attaches to pre-started workers at the given control
// addresses (see cmd/archworker) instead of self-spawning. A run of n
// processes uses the first n addresses; fewer than n is a run error.
func WithWorkers(addrs ...string) Option {
	return func(r *runner) { r.attach = append([]string(nil), addrs...) }
}

// WithWorkerCommand spawns workers by running the given command instead
// of re-executing the current binary. The command must end up in
// JoinWorld — the usual shape is a binary whose main calls MaybeWorker
// (the coordinator address and world secret are passed in the
// environment), wrapped in whatever launcher (container, numactl, ssh to
// localhost) the deployment needs.
func WithWorkerCommand(name string, args ...string) Option {
	return func(r *runner) { r.workerCmd = append([]string{name}, args...) }
}

// WithHandshakeTimeout bounds how long NewTransport waits for all workers
// to connect and ready (default 30s).
func WithHandshakeTimeout(d time.Duration) Option {
	return func(r *runner) { r.handshake = d }
}

// WithInjector installs a fault injector consulted before every control
// I/O: hook points "dist.send" and "dist.recv", with the rank's operation
// index as the epoch. Drop closes that rank's control connection (the run
// then fails through the ordinary lost-worker path); Delay sleeps before
// the operation. Tests and the chaos CI job use this to exercise failure
// paths deterministically.
func WithInjector(in *faultinject.Injector) Option {
	return func(r *runner) { r.inj = in }
}

// WithPeerRouting routes messages through the worker↔worker data plane
// (coordinator → source's worker → destination's worker → coordinator)
// instead of the destination-direct default. It costs one extra socket
// crossing per message but sends every payload across the peer fabric —
// the path a multi-host deployment's bytes actually take — so parity
// tests keep that plane honest end to end.
func WithPeerRouting() Option {
	return func(r *runner) { r.relay = true }
}

// WithWorkerPool reuses worker processes across this runner's worlds: a
// cleanly finished world parks its workers — processes alive, control
// connections warm — in a runner-owned pool, and the next world starts
// with a handshake on those connections instead of a process spawn per
// rank (a ~50× cut in world-start latency on a loopback host). Failed or
// cancelled worlds kill their workers instead of pooling them, and a
// pooled worker that dies while idle is discarded on reuse. Pooled
// workers live until the coordinator process exits (their connections
// close with it); use the default spawn-per-world mode when worker
// processes must not outlive their run.
func WithWorkerPool() Option {
	return func(r *runner) { r.pool = &workerPool{} }
}

// New builds a dist backend runner. The zero configuration — what the
// registry's "dist" entry uses — self-spawns one localhost worker process
// per rank by re-executing the current binary, so any binary whose main
// calls MaybeWorker supports it out of the box.
func New(opts ...Option) backend.Runner {
	r := &runner{handshake: 30 * time.Second}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

func (r *runner) Name() string { return "dist" }

// Virtual reports false: dist runs are wall-clock measurements (and spawn
// real processes), so sweeps serialize them like the real backend's.
func (r *runner) Virtual() bool { return false }

func (r *runner) NewTransport(ctx context.Context, n int, m *machine.Model) backend.Transport {
	t, err := r.start(ctx, n)
	if err != nil {
		return &failedTransport{n: n, err: fmt.Errorf("dist: world start: %w", err)}
	}
	return t
}

// proc is one spawned worker process. Its wait goroutine reaps the
// process the moment it exits (no zombies, whether the exit is a crash
// mid-run, a kill at teardown, or a pooled worker dying idle) and closes
// dead, the signal world monitors and teardown select on.
type proc struct {
	cmd     *exec.Cmd
	waitErr error // valid after dead is closed
	dead    chan struct{}
}

func newProc(cmd *exec.Cmd) *proc {
	p := &proc{cmd: cmd, dead: make(chan struct{})}
	go func() {
		p.waitErr = cmd.Wait()
		close(p.dead)
	}()
	return p
}

// kill terminates the process and waits for the reaper; already-exited
// processes pass straight through.
func (p *proc) kill() {
	p.cmd.Process.Kill() //nolint:errcheck // already-exited is fine
	<-p.dead
}

// controlPlane is where workers report in: the listener, the address
// workers are told to dial (the envWorker value), and the spawn token
// they authenticate with. Self-spawned worlds get a unix-domain socket in
// a private temp dir — same-host crossings are what the socket carries,
// and unix sockets shave scheduler latency off every one — falling back
// to TCP loopback where unix sockets are unavailable. Ephemeral for a
// spawn-per-world runner, pool-owned (and pool-lived) for a pooled one.
type controlPlane struct {
	ln       net.Listener
	addrSpec string
	token    string
	dir      string // temp dir holding the unix socket; "" for TCP
	// acceptMu serializes spawn+accept phases: concurrent worlds on one
	// pooled runner share the listener, and interleaved accepts would
	// steal each other's workers.
	acceptMu sync.Mutex
}

func newControlPlane() (*controlPlane, error) {
	var token [16]byte
	if _, err := rand.Read(token[:]); err != nil {
		return nil, fmt.Errorf("spawn token: %w", err)
	}
	cp := &controlPlane{token: hex.EncodeToString(token[:])}
	if dir, err := os.MkdirTemp("", "archdist-*"); err == nil {
		path := filepath.Join(dir, "ctl.sock")
		if ln, err := net.Listen("unix", path); err == nil {
			cp.ln, cp.addrSpec, cp.dir = ln, "unix:"+path, dir
			return cp, nil
		}
		os.RemoveAll(dir) //nolint:errcheck // best-effort
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("control listener: %w", err)
	}
	cp.ln, cp.addrSpec = ln, ln.Addr().String()
	return cp, nil
}

func (cp *controlPlane) close() {
	cp.ln.Close()
	if cp.dir != "" {
		os.RemoveAll(cp.dir) //nolint:errcheck // best-effort
	}
}

// pooledWorker is a parked worker between worlds: its process, its warm
// control connection, and the connection's read buffer (which already
// holds the hello the worker sent eagerly after its last bye).
type pooledWorker struct {
	p  *proc
	c  net.Conn
	br *bufio.Reader
}

// workerPool parks cleanly finished workers between a runner's worlds.
type workerPool struct {
	mu   sync.Mutex
	cp   *controlPlane
	idle []*pooledWorker
}

// ensure lazily builds the pool's control plane; pooled workers must all
// report to one listener with one token for the life of the runner.
func (wp *workerPool) ensure() (*controlPlane, error) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.cp == nil {
		cp, err := newControlPlane()
		if err != nil {
			return nil, err
		}
		wp.cp = cp
	}
	return wp.cp, nil
}

// get pops an idle worker, skipping (and thereby discarding — the wait
// goroutine already reaped them) any that died while parked.
func (wp *workerPool) get() *pooledWorker {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for len(wp.idle) > 0 {
		pw := wp.idle[len(wp.idle)-1]
		wp.idle = wp.idle[:len(wp.idle)-1]
		select {
		case <-pw.p.dead:
			pw.c.Close()
			continue
		default:
			return pw
		}
	}
	return nil
}

func (wp *workerPool) put(pw *pooledWorker) {
	wp.mu.Lock()
	wp.idle = append(wp.idle, pw)
	wp.mu.Unlock()
}

// start acquires the workers (pool, spawn, or attach) and runs the
// world-start barrier. On any error it tears down whatever it had
// started and returns the error; the caller wraps it into a
// failedTransport so every rank's first transport operation reports it.
func (r *runner) start(ctx context.Context, n int) (*transport, error) {
	t := &transport{
		ctx:      ctx,
		n:        n,
		r:        r,
		conns:    make([]*workerConn, 0, n),
		counters: make([]shard, n),
		sendBufs: make([][]byte, n),
		recvBufs: make([][]byte, n),
		ops:      make([]int, n),
		inj:      r.inj,
		rec:      obs.RunRecorder(ctx, n, "dist"),
	}
	ok := false
	defer func() {
		if !ok {
			t.teardown()
		}
	}()

	deadline := time.Now().Add(r.handshake)

	switch {
	case len(r.attach) > 0:
		if len(r.attach) < n {
			return nil, fmt.Errorf("%d attached workers for a world of %d", len(r.attach), n)
		}
		for i := 0; i < n; i++ {
			c, err := net.DialTimeout("tcp", r.attach[i], time.Until(deadline))
			if err != nil {
				return nil, fmt.Errorf("dialing worker %d: %w", i, err)
			}
			t.conns = append(t.conns, newWorkerConn(c))
		}
		for _, wc := range t.conns {
			if err := wc.expectHello(deadline, ""); err != nil {
				return nil, err
			}
		}
	case r.pool != nil:
		cp, err := r.pool.ensure()
		if err != nil {
			return nil, err
		}
		// Warm workers first: their next-world hello is already in the
		// connection buffer, so validation is a local read. A worker that
		// went bad while parked is discarded, not fatal.
		for len(t.conns) < n {
			pw := r.pool.get()
			if pw == nil {
				break
			}
			wc := &workerConn{c: pw.c, br: pw.br, w: NewWriter(pw.c), proc: pw.p}
			if err := wc.expectHello(deadline, cp.token); err != nil {
				wc.c.Close()
				pw.p.kill()
				continue
			}
			t.conns = append(t.conns, wc)
			t.procs = append(t.procs, pw.p)
		}
		if err := r.spawnInto(t, cp, n, deadline); err != nil {
			return nil, err
		}
	default:
		cp, err := newControlPlane()
		if err != nil {
			return nil, err
		}
		defer cp.close()
		if err := r.spawnInto(t, cp, n, deadline); err != nil {
			return nil, err
		}
	}

	// All n workers present: assign ranks in arrival order, publish the
	// address book and the peer-plane secret (minted per world so a
	// worker's data listener only accepts its own world's peers — the
	// control token cannot serve, attach-mode workers have none), and
	// wait for every ready — the world-start barrier.
	var peerSecretRaw [16]byte
	if _, err := rand.Read(peerSecretRaw[:]); err != nil {
		return nil, fmt.Errorf("peer secret: %w", err)
	}
	peerSecret := hex.EncodeToString(peerSecretRaw[:])
	addrs := make([]string, n)
	for rank, wc := range t.conns {
		addrs[rank] = wc.peerAddr
	}
	for rank, wc := range t.conns {
		if err := WriteFrame(wc.c, opAssign, assignBody(rank, n, peerSecret, addrs)); err != nil {
			return nil, fmt.Errorf("assigning rank %d: %w", rank, err)
		}
	}
	for rank, wc := range t.conns {
		op, _, err := wc.read(deadline)
		if err != nil {
			return nil, fmt.Errorf("awaiting ready from rank %d: %w", rank, err)
		}
		if op != opReady {
			return nil, fmt.Errorf("rank %d sent op %d instead of ready", rank, op)
		}
	}

	// The data plane: a per-rank coordinator inbox banking the worker's
	// eager opDeliver pushes. The rank's own goroutine reads its control
	// connection inside Recv/RecvAny (so a delivery wakes the waiting
	// rank directly from the socket — no relay or flusher goroutine on
	// the critical path); buffered sends flush at every rank's next
	// blocking point, and the rank-return hook (see RankReturned) is the
	// backstop for a rank whose body ends with sends still buffered.
	t.inboxes = make([]*inQueue, n)
	for i := range t.inboxes {
		t.inboxes[i] = newInQueue(n)
	}
	for _, wc := range t.conns {
		wc.c.SetReadDeadline(time.Time{}) //nolint:errcheck // clear the handshake deadline
	}

	// Monitors: a worker process dying mid-run fails the whole world
	// instead of hanging ranks that wait for its messages. Each monitor
	// parks on its process's death signal until the world ends.
	t.worldDone = make(chan struct{})
	for rank, wc := range t.conns {
		if wc.proc == nil {
			continue
		}
		t.monWG.Add(1)
		go func(rank int, p *proc) {
			defer t.monWG.Done()
			select {
			case <-p.dead:
				if !t.quiescent() {
					t.fail(fmt.Errorf("dist: worker process for rank %d exited mid-run: %v", rank, p.waitErr))
				}
			case <-t.worldDone:
			}
		}(rank, wc.proc)
	}
	if ctx.Done() != nil {
		t.stopCancel = context.AfterFunc(ctx, func() {
			t.fail(ctx.Err())
		})
	}
	t.begin = time.Now()
	ok = true
	return t, nil
}

// spawnInto launches workers until t holds n connections, accepting and
// authenticating their hellos on cp's listener. Every spawned process is
// recorded in t.procs immediately so teardown can reap it even when the
// handshake fails halfway.
func (r *runner) spawnInto(t *transport, cp *controlPlane, n int, deadline time.Time) error {
	need := n - len(t.conns)
	if need == 0 {
		return nil
	}
	cp.acceptMu.Lock()
	defer cp.acceptMu.Unlock()
	env := append(os.Environ(),
		envWorker+"="+cp.addrSpec,
		envToken+"="+cp.token)
	spawned := make(map[int]*proc, need)
	for i := 0; i < need; i++ {
		var cmd *exec.Cmd
		if len(r.workerCmd) > 0 {
			cmd = exec.Command(r.workerCmd[0], r.workerCmd[1:]...)
		} else {
			exe, err := os.Executable()
			if err != nil {
				return fmt.Errorf("locating own binary: %w", err)
			}
			cmd = exec.Command(exe)
		}
		cmd.Env = env
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning worker: %w", err)
		}
		p := newProc(cmd)
		spawned[cmd.Process.Pid] = p
		t.procs = append(t.procs, p)
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	for matched := 0; matched < need; {
		if d, ok := cp.ln.(deadliner); ok {
			if err := d.SetDeadline(deadline); err != nil {
				return err
			}
		}
		c, err := cp.ln.Accept()
		if err != nil {
			return fmt.Errorf("accepting workers (%d of %d connected; workers self-spawn by re-executing this binary — does its main call dist.MaybeWorker?): %w",
				len(t.conns), n, err)
		}
		wc := newWorkerConn(c)
		if err := wc.expectHello(deadline, cp.token); err != nil {
			// Not our worker (stray connection or stale world): drop it
			// and keep listening until the deadline.
			c.Close()
			continue
		}
		p := spawned[wc.pid]
		if p == nil {
			// Right token, wrong process: a straggler from an earlier
			// world of this pool's listener. Its own world already killed
			// (or will kill) it; closing the connection hurries it along.
			c.Close()
			continue
		}
		wc.proc = p
		t.conns = append(t.conns, wc)
		matched++
	}
	return nil
}

func init() { backend.Register(New()) }

// workerConn is the coordinator's control connection to one worker.
// After the world starts, writes go through the coalescing Writer (any
// rank may send toward this connection's worker; Writer serializes them)
// and reads belong to the connection's own rank's goroutine (inside
// Recv/RecvAny) until the finish barrier takes them over — the rank
// goroutines are gone by then. Close is safe concurrently (net.Conn
// guarantees it), which is how fail unwinds everything, including a rank
// blocked reading for a delivery.
type workerConn struct {
	c  net.Conn
	br *bufio.Reader
	w  *Writer
	// proc is the worker's process; nil for attach-mode connections.
	proc     *proc
	peerAddr string
	pid      int
	// poolable is set by the finish barrier on receipt of the worker's
	// bye: the worker is provably between worlds, so teardown may park
	// it in the runner's pool instead of killing it.
	poolable bool
}

func newWorkerConn(c net.Conn) *workerConn {
	return &workerConn{c: c, br: bufio.NewReader(c), w: NewWriter(c)}
}

// read returns the next frame; a zero deadline means block indefinitely.
// Used at handshake time and by the finish barrier; mid-run reads belong
// to the rank's own goroutine via popMsg.
func (wc *workerConn) read(deadline time.Time) (byte, []byte, error) {
	if err := wc.c.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	return ReadFrame(wc.br)
}

// expectHello consumes the worker's hello frame, checking the world
// secret when one is required.
func (wc *workerConn) expectHello(deadline time.Time, token string) error {
	op, body, err := wc.read(deadline)
	if err != nil {
		return fmt.Errorf("awaiting hello: %w", err)
	}
	if op != opHello {
		return fmt.Errorf("expected hello frame, got op %d", op)
	}
	got, peerAddr, pid, err := parseHello(body)
	if err != nil {
		return err
	}
	if token != "" && got != token {
		return fmt.Errorf("hello with wrong world secret")
	}
	wc.peerAddr, wc.pid = peerAddr, pid
	return nil
}

// shard is one rank's message/byte tally, written only by that rank's
// goroutine and summed in Finish (after every process returned, so the
// world's WaitGroup provides the happens-before edge), mirroring the
// in-process mailbox's sharded meters.
type shard struct {
	msgs  int64
	bytes int64
	_     [112]byte
}

// transport is the coordinator side of one dist run.
type transport struct {
	ctx   context.Context
	n     int
	begin time.Time
	r     *runner

	conns []*workerConn
	// procs holds every worker process this world owns (pool-acquired
	// and freshly spawned); teardown kills whichever were not returned
	// to the pool.
	procs    []*proc
	counters []shard
	// sendBufs is per-source-rank scratch (rank-goroutine only) for
	// assembling send bodies without per-send allocation.
	sendBufs [][]byte
	// recvBufs is per-destination-rank scratch (rank-goroutine only) for
	// reading control frames without per-delivery allocation; popMsg's
	// fast path hands the payload to the decoder straight out of it.
	recvBufs [][]byte
	// inboxes bank eagerly pushed deliveries per destination rank;
	// Recv/RecvAny pop them locally.
	inboxes []*inQueue
	// ops counts each rank's transport operations (rank-goroutine only):
	// the epoch coordinate for fault-injection rules.
	ops []int
	inj *faultinject.Injector
	// rec is the run's flight recorder; nil (free) when tracing is off.
	rec *obs.Recorder

	mu        sync.Mutex
	err       error
	finishing bool

	// worldDone releases the per-process monitors at teardown.
	worldDone chan struct{}
	doneOnce  sync.Once
	monWG     sync.WaitGroup

	stopCancel func() bool
}

// fail records the run's first fatal error and closes every control
// connection, unwinding all blocked operations — a rank parked in a
// connection read waiting for a dead worker's delivery gets a read error
// and raises. (Closing the inboxes is defensive: the owning ranks only
// try-pop them, but any future blocking consumer unwinds too.) After
// Finish has begun it is a no-op (workers exiting at world end are not
// failures).
func (t *transport) fail(err error) {
	t.mu.Lock()
	if t.finishing || t.err != nil {
		t.mu.Unlock()
		return
	}
	t.err = err
	t.mu.Unlock()
	for _, wc := range t.conns {
		wc.c.Close()
	}
	for _, q := range t.inboxes {
		q.close()
	}
}

// quiescent reports whether the run already failed or is finishing — the
// states in which a worker exit is expected rather than fatal.
func (t *transport) quiescent() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finishing || t.err != nil
}

func (t *transport) runErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// raise converts an I/O failure on a control connection into the
// cancellation sentinel, preferring the run's root cause (recorded fail,
// then context cancellation) over the local symptom.
func (t *transport) raise(rank int, ioErr error) {
	if err := t.runErr(); err != nil {
		panic(backend.Canceled(err))
	}
	if err := t.ctx.Err(); err != nil {
		panic(backend.Canceled(err))
	}
	err := fmt.Errorf("dist: rank %d worker connection: %w", rank, ioErr)
	t.fail(err)
	panic(backend.Canceled(err))
}

// Charge discards modeled computation like the real backend: computation
// takes real time here.
func (t *transport) Charge(rank int, sec float64) {}

// SetResident is a no-op: the host's memory system pages for real.
func (t *transport) SetResident(rank int, bytes float64) {}

func (t *transport) Clock(rank int) float64 { return time.Since(t.begin).Seconds() }

// Recorder implements backend.Traced.
func (t *transport) Recorder() *obs.Recorder { return t.rec }

// Idle cannot advance a wall clock.
func (t *transport) Idle(rank int, at float64) {}

// inject consults the fault injector before rank's control I/O at the
// given hook point. Drop severs the rank's control connection so the
// world fails through the ordinary lost-worker path (the rank's worker
// exits when its connection closes, which the process monitor reports,
// and the rank's own next read errors immediately); Delay sleeps here.
func (t *transport) inject(point string, rank int) {
	if t.inj == nil {
		return
	}
	epoch := t.ops[rank]
	t.ops[rank]++
	act, d := t.inj.Eval(point, rank, epoch)
	if act != faultinject.None && t.rec != nil {
		t.rec.Emit(rank, obs.Event{T: t.rec.Now(), Peer: -1, Tag: int32(act), Kind: obs.KindFault})
	}
	switch act {
	case faultinject.Drop:
		t.conns[rank].c.Close()
	case faultinject.Delay:
		time.Sleep(d)
	}
}

// Send appends the message to the routing-mode's connection: the
// destination rank's (default — its worker pushes the body back up as
// the delivery) or the source rank's (peer routing — its worker relays
// across the data plane). Either way the frame only reaches the wire at
// the sending rank's next flush point (its next receive, or its body
// returning), which is the write-coalescing boundary: a burst of sends
// goes out as one opBatch frame.
func (t *transport) Send(src, dst, tag int, data any, bytes int) {
	var start int64
	if t.rec != nil {
		start = t.rec.Now()
	}
	t.inject("dist.send", src)
	if src == dst {
		// Self-send: codec-encode and bank in the local inbox directly,
		// the cross-process analogue of the in-process mailbox's local
		// delivery. Unmetered, like every self-send.
		body, err := spmd.AppendPayload(nil, data)
		if err != nil {
			panic(fmt.Sprintf("dist: process %d: %v", src, err))
		}
		t.inboxes[src].push(inMsg{src: src, tag: tag, metered: bytes, payload: body})
		if t.rec != nil {
			t.rec.Emit(src, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(bytes), Peer: int32(dst), Tag: int32(tag), Kind: obs.KindSend})
		}
		return
	}
	wc, op, rankField := t.conns[dst], opSend, src
	if t.r.relay {
		wc, op, rankField = t.conns[src], opRelay, dst
	}
	hdr := appendMsgHeader(t.sendBufs[src][:0], rankField, tag, bytes)
	body, err := spmd.AppendPayload(hdr, data)
	if err != nil {
		// A payload outside the wire codec is a programming error of the
		// same class as a tag mismatch: panic with the reason rather
		// than poisoning the run with a substrate error.
		panic(fmt.Sprintf("dist: process %d: %v", src, err))
	}
	werr := wc.w.Write(op, body)
	t.sendBufs[src] = body[:0]
	if werr != nil {
		t.raise(src, werr)
	}
	sh := &t.counters[src]
	sh.msgs++
	sh.bytes += int64(bytes)
	if t.rec != nil {
		t.rec.Emit(src, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(bytes), Peer: int32(dst), Tag: int32(tag), Kind: obs.KindSend})
	}
}

// flushConns puts every connection's buffered frames on the wire — the
// coalescing boundary, hit whenever a rank is about to block (and when
// its body returns). Flushing all connections rather than just the
// rank's own is what lets Send stay fire-and-forget with no flusher
// goroutine: whichever rank blocks first drives everyone's pending bytes
// out, and an idle Writer's Flush is a mutex acquisition, not a syscall.
func (t *transport) flushConns(rank int) {
	if t.rec == nil {
		for _, wc := range t.conns {
			if err := wc.w.Flush(); err != nil {
				t.raise(rank, err)
			}
		}
		return
	}
	start := t.rec.Now()
	frames, batched := 0, 0
	for _, wc := range t.conns {
		n, err := wc.w.FlushN()
		if err != nil {
			t.raise(rank, err)
		}
		frames += n
		if n > 1 {
			batched++
		}
	}
	if frames > 0 {
		// Bytes carries the frame count for flush events, and the number
		// of connections whose frames were coalesced for batch events.
		t.rec.Emit(rank, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(frames), Peer: -1, Kind: obs.KindFlush})
		if batched > 0 {
			t.rec.Emit(rank, obs.Event{T: start, Bytes: int64(batched), Peer: -1, Kind: obs.KindBatch})
		}
	}
}

// RankReturned implements backend.RankObserver: the rank's body is done,
// so its buffered sends must reach the wire now — it will never hit
// another flush point, and peers may be blocked on those messages.
// Errors fail the world (no panic: this runs outside the rank body's
// recover) unless it is already quiescent.
func (t *transport) RankReturned(rank int) {
	frames := 0
	for _, wc := range t.conns {
		n, err := wc.w.FlushN()
		if err != nil {
			if !t.quiescent() {
				t.fail(fmt.Errorf("dist: rank %d final flush: %w", rank, err))
			}
			return
		}
		frames += n
	}
	if frames > 0 && t.rec != nil {
		t.rec.Emit(rank, obs.Event{T: t.rec.Now(), Bytes: int64(frames), Peer: -1, Kind: obs.KindFlush})
	}
}

// popMsg is the receive engine, run entirely in the receiving rank's
// goroutine: flush every buffered send (progress other ranks may depend
// on), then satisfy the targeted (src >= 0) or any-source receive from
// the inbox, reading the rank's control connection for eagerly pushed
// deliveries until the wanted one arrives and banking every other
// delivery for later receives. Blocking happens only in the connection
// read, so a delivery wakes the waiting rank straight from the socket —
// no relay goroutine — and a failed world unwinds it by closing the
// connection.
//
// The common case — the wanted message is the next delivery off the wire
// — never touches the inbox: frames land in the rank's reused read
// scratch and the first match is returned directly, so the returned
// payload is only valid until the rank's next transport operation (the
// callers decode immediately). Only bypassed deliveries are copied out
// of the scratch and banked. A first-match direct consume is safe on
// both FIFO orders: with an empty per-source queue the first frame from
// src IS the oldest from src, and with an empty inbox the first frame of
// the batch IS the oldest cross-source arrival.
func (t *transport) popMsg(dst, src int) inMsg {
	t.inject("dist.recv", dst)
	t.flushConns(dst)
	inbox := t.inboxes[dst]
	wc := t.conns[dst]
	for {
		var m inMsg
		var ok bool
		if src >= 0 {
			m, ok = inbox.tryPop(src)
		} else {
			m, ok = inbox.tryPopAny()
		}
		if ok {
			return m
		}
		op, body, err := readFrameInto(wc.br, &t.recvBufs[dst])
		if err != nil {
			t.raise(dst, err)
		}
		err = forEachFrame(op, body, func(op byte, b []byte) error {
			if op != opDeliver {
				return fmt.Errorf("unexpected control op %d", op)
			}
			from, tag, metered, payload, err := parseMsgHeader(b)
			if err != nil {
				return err
			}
			if from < 0 || from >= t.n {
				return fmt.Errorf("delivery from invalid rank %d", from)
			}
			if t.rec != nil {
				t.rec.Emit(dst, obs.Event{T: t.rec.Now(), Bytes: int64(metered), Peer: int32(from), Tag: int32(tag), Kind: obs.KindDeliver})
			}
			if !ok && (src < 0 || from == src) {
				m = inMsg{src: from, tag: tag, metered: metered, payload: payload}
				ok = true
				return nil
			}
			// Not the wanted message (or one already matched): bank a copy
			// — the scratch underneath payload is reused on the next read.
			inbox.push(inMsg{src: from, tag: tag, metered: metered,
				payload: append([]byte(nil), payload...)})
			return nil
		})
		if err != nil {
			t.raise(dst, fmt.Errorf("rank %d control stream: %w", dst, err))
		}
		if ok {
			return m
		}
	}
}

func (t *transport) Recv(src, dst, tag int) any {
	var start int64
	if t.rec != nil {
		start = t.rec.Now()
	}
	m := t.popMsg(dst, src)
	if m.tag != tag {
		panic(fmt.Sprintf("dist: process %d expected tag %d from %d, got %d", dst, tag, src, m.tag))
	}
	data, _, err := spmd.DecodePayload(m.payload)
	if err != nil {
		t.raise(dst, fmt.Errorf("decoding message from %d: %w", src, err))
	}
	if t.rec != nil {
		t.rec.Emit(dst, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(m.metered), Peer: int32(m.src), Tag: int32(tag), Kind: obs.KindRecv})
	}
	return data
}

func (t *transport) RecvAny(dst, tag int) (int, any) {
	var start int64
	if t.rec != nil {
		start = t.rec.Now()
	}
	m := t.popMsg(dst, -1)
	if m.tag != tag {
		panic(fmt.Sprintf("dist: process %d expected tag %d from any source, got %d from %d",
			dst, tag, m.tag, m.src))
	}
	data, _, err := spmd.DecodePayload(m.payload)
	if err != nil {
		t.raise(dst, fmt.Errorf("decoding message from %d: %w", m.src, err))
	}
	if t.rec != nil {
		t.rec.Emit(dst, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(m.metered), Peer: int32(m.src), Tag: int32(tag), Kind: obs.KindRecvAny})
	}
	return m.src, data
}

// Finish runs the world-finish barrier (finish/bye with every live
// worker), tears the substrate down — parking cleanly finished workers
// in the runner's pool when one is configured — and assembles the run
// summary.
func (t *transport) Finish() backend.Result {
	elapsed := time.Since(t.begin).Seconds()
	t.mu.Lock()
	t.finishing = true
	failedErr := t.err
	t.mu.Unlock()
	if t.stopCancel != nil {
		t.stopCancel()
		t.stopCancel = nil
	}
	if failedErr == nil && t.ctx.Err() == nil {
		deadline := time.Now().Add(10 * time.Second)
		for _, wc := range t.conns {
			// Through the Writer so the finish frame orders after any
			// still-buffered sends.
			wc.w.Write(opFinish, nil) //nolint:errcheck // teardown is best-effort
			wc.w.Flush()              //nolint:errcheck
		}
		// The rank goroutines are gone (Run joined them), so the barrier
		// owns the reads now: drain each connection to its bye, skipping
		// stale deliveries nobody will receive. A worker's bye proves it
		// is between worlds — exactly the state the pool parks.
		for _, wc := range t.conns {
			for {
				op, body, err := wc.read(deadline)
				if err != nil {
					break // dead or deadline: either way this world is over
				}
				bye := false
				forEachFrame(op, body, func(op byte, b []byte) error { //nolint:errcheck // drain
					if op == opBye {
						bye = true
					}
					return nil
				})
				if bye {
					wc.poolable = true
					break
				}
			}
		}
	}
	t.teardown()
	res := backend.Result{Makespan: elapsed, Clocks: make([]float64, t.n)}
	for i := range res.Clocks {
		res.Clocks[i] = elapsed
	}
	for i := range t.counters {
		res.Msgs += t.counters[i].msgs
		res.Bytes += t.counters[i].bytes
	}
	return res
}

// teardown releases the substrate: monitors unparked, inboxes closed,
// and every worker either returned to the runner's pool (spawned, bye
// received, pool configured) or closed and killed. Workers exit on their
// own once their control connection closes; the kill is the backstop
// that bounds the reap.
func (t *transport) teardown() {
	if t.stopCancel != nil {
		t.stopCancel()
		t.stopCancel = nil
	}
	t.mu.Lock()
	t.finishing = true
	t.mu.Unlock()
	if t.worldDone != nil {
		t.doneOnce.Do(func() { close(t.worldDone) })
	}
	pooled := make(map[*proc]bool)
	for _, wc := range t.conns {
		if t.r != nil && t.r.pool != nil && wc.poolable && wc.proc != nil {
			// The worker's next hello is already on its way up this
			// connection; the next world's handshake picks it up.
			wc.c.SetReadDeadline(time.Time{}) //nolint:errcheck // park with a clean slate
			t.r.pool.put(&pooledWorker{p: wc.proc, c: wc.c, br: wc.br})
			pooled[wc.proc] = true
			continue
		}
		wc.c.Close()
	}
	for _, q := range t.inboxes {
		q.close()
	}
	for _, p := range t.procs {
		if !pooled[p] {
			p.kill()
		}
	}
	t.monWG.Wait()
	t.procs = nil
}

// failedTransport is what NewTransport returns when the world could not
// start (the Runner interface has no error channel): every operation a
// rank attempts raises the cancellation sentinel carrying the start
// error, so the run reports it instead of executing on a half-built
// substrate.
type failedTransport struct {
	n   int
	err error
}

func (f *failedTransport) Charge(rank int, sec float64)         { panic(backend.Canceled(f.err)) }
func (f *failedTransport) SetResident(rank int, bytes float64)  { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Clock(rank int) float64               { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Idle(rank int, at float64)            { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Send(src, dst, tag int, d any, b int) { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Recv(src, dst, tag int) any           { panic(backend.Canceled(f.err)) }
func (f *failedTransport) RecvAny(dst, tag int) (int, any)      { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Finish() backend.Result {
	return backend.Result{Clocks: make([]float64, f.n)}
}
