// Package dist is the distributed execution backend: an SPMD world whose
// message fabric spans OS processes connected by TCP.
//
// The paper's archetype claim is that one communication skeleton runs on
// many execution substrates. The sim and real backends prove it for two
// in-process substrates; this package makes the Transport seam cross
// address spaces. A run on the dist backend launches (or attaches to) N
// worker processes — one per rank — and routes every Send, Recv, and
// RecvAny (and therefore every collective, which is built from them)
// through those workers over length-prefixed TCP frames:
//
//	coordinator ── control conn ──> worker[src] ── peer conn ──> worker[dst]
//	coordinator <── control conn ── worker[dst]
//
// Rank bodies execute as goroutines in the coordinating process (they are
// ordinary Go closures; shipping code is out of scope), but every payload
// genuinely leaves the coordinator's address space as spmd wire-codec
// bytes, crosses between worker processes, and is reconstructed on
// receive — the bit-identical parity table across sim/real/dist is the
// proof the codec and routing are faithful.
//
// Lifecycle: NewTransport spawns the workers (by default re-executing the
// current binary — see MaybeWorker — authenticated by a per-world secret),
// collects their hellos, assigns ranks, and broadcasts the address book;
// all n ready frames complete the world-start barrier. Finish runs the
// mirror-image barrier (finish/bye), then reaps the processes. Messages
// and bytes are metered on the coordinator exactly as the in-process
// mailbox meters them, so cost accounting is identical across backends.
//
// Failure is fail-fast: cancelling the run's context, or any worker
// process dying mid-run, closes every control connection; blocked
// receives unwind with the same cancellation sentinel the in-process
// mailbox raises, and the run returns an error instead of hanging.
package dist

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// runner is the dist backend: a Transport factory whose configuration
// (spawn command or attach addresses, handshake timeout) is fixed at
// construction. The registered default self-spawns localhost workers.
type runner struct {
	// attach lists pre-started worker control addresses (cmd/archworker
	// -listen); empty means self-spawn.
	attach []string
	// workerCmd overrides the spawned command (default: this binary,
	// relying on MaybeWorker). The coordinator address and world secret
	// travel in the environment either way.
	workerCmd []string
	// handshake bounds world start: every worker must hello and ready
	// within it.
	handshake time.Duration
	// inj is the fault-injection seam (nil injects nothing).
	inj *faultinject.Injector
}

// Option configures a dist runner.
type Option func(*runner)

// WithWorkers attaches to pre-started workers at the given control
// addresses (see cmd/archworker) instead of self-spawning. A run of n
// processes uses the first n addresses; fewer than n is a run error.
func WithWorkers(addrs ...string) Option {
	return func(r *runner) { r.attach = append([]string(nil), addrs...) }
}

// WithWorkerCommand spawns workers by running the given command instead
// of re-executing the current binary. The command must end up in
// JoinWorld — the usual shape is a binary whose main calls MaybeWorker
// (the coordinator address and world secret are passed in the
// environment), wrapped in whatever launcher (container, numactl, ssh to
// localhost) the deployment needs.
func WithWorkerCommand(name string, args ...string) Option {
	return func(r *runner) { r.workerCmd = append([]string{name}, args...) }
}

// WithHandshakeTimeout bounds how long NewTransport waits for all workers
// to connect and ready (default 30s).
func WithHandshakeTimeout(d time.Duration) Option {
	return func(r *runner) { r.handshake = d }
}

// WithInjector installs a fault injector consulted before every control
// I/O: hook points "dist.send" and "dist.recv", with the rank's operation
// index as the epoch. Drop closes that rank's control connection (the run
// then fails through the ordinary lost-worker path); Delay sleeps before
// the operation. Tests and the chaos CI job use this to exercise failure
// paths deterministically.
func WithInjector(in *faultinject.Injector) Option {
	return func(r *runner) { r.inj = in }
}

// New builds a dist backend runner. The zero configuration — what the
// registry's "dist" entry uses — self-spawns one localhost worker process
// per rank by re-executing the current binary, so any binary whose main
// calls MaybeWorker supports it out of the box.
func New(opts ...Option) backend.Runner {
	r := &runner{handshake: 30 * time.Second}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

func (r *runner) Name() string { return "dist" }

// Virtual reports false: dist runs are wall-clock measurements (and spawn
// real processes), so sweeps serialize them like the real backend's.
func (r *runner) Virtual() bool { return false }

func (r *runner) NewTransport(ctx context.Context, n int, m *machine.Model) backend.Transport {
	t, err := r.start(ctx, n)
	if err != nil {
		return &failedTransport{n: n, err: fmt.Errorf("dist: world start: %w", err)}
	}
	return t
}

// start spawns (or dials) the workers and runs the world-start barrier.
// On any error it tears down whatever it had started and returns the
// error; the caller wraps it into a failedTransport so every rank's first
// transport operation reports it.
func (r *runner) start(ctx context.Context, n int) (*transport, error) {
	t := &transport{
		ctx:      ctx,
		n:        n,
		conns:    make([]*workerConn, 0, n),
		counters: make([]shard, n),
		ops:      make([]int, n),
		inj:      r.inj,
	}
	ok := false
	defer func() {
		if !ok {
			t.teardown()
		}
	}()

	deadline := time.Now().Add(r.handshake)
	pidRank := map[int]int{}

	if len(r.attach) > 0 {
		if len(r.attach) < n {
			return nil, fmt.Errorf("%d attached workers for a world of %d", len(r.attach), n)
		}
		for i := 0; i < n; i++ {
			c, err := net.DialTimeout("tcp", r.attach[i], time.Until(deadline))
			if err != nil {
				return nil, fmt.Errorf("dialing worker %d: %w", i, err)
			}
			t.conns = append(t.conns, newWorkerConn(c))
		}
		for _, wc := range t.conns {
			if err := wc.expectHello(deadline, ""); err != nil {
				return nil, err
			}
		}
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("control listener: %w", err)
		}
		defer ln.Close()
		var secret [16]byte
		if _, err := rand.Read(secret[:]); err != nil {
			return nil, fmt.Errorf("world secret: %w", err)
		}
		token := hex.EncodeToString(secret[:])
		env := append(os.Environ(),
			envWorker+"="+ln.Addr().String(),
			envToken+"="+token)
		for i := 0; i < n; i++ {
			var cmd *exec.Cmd
			if len(r.workerCmd) > 0 {
				cmd = exec.CommandContext(ctx, r.workerCmd[0], r.workerCmd[1:]...)
			} else {
				exe, err := os.Executable()
				if err != nil {
					return nil, fmt.Errorf("locating own binary: %w", err)
				}
				cmd = exec.CommandContext(ctx, exe)
			}
			cmd.Env = env
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, fmt.Errorf("spawning worker %d: %w", i, err)
			}
			t.procs = append(t.procs, cmd)
		}
		tcpLn := ln.(*net.TCPListener)
		for len(t.conns) < n {
			if err := tcpLn.SetDeadline(deadline); err != nil {
				return nil, err
			}
			c, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("accepting workers (%d of %d connected; workers self-spawn by re-executing this binary — does its main call dist.MaybeWorker?): %w",
					len(t.conns), n, err)
			}
			wc := newWorkerConn(c)
			if err := wc.expectHello(deadline, token); err != nil {
				// Not our worker (stray connection or stale world):
				// drop it and keep listening until the deadline.
				c.Close()
				continue
			}
			t.conns = append(t.conns, wc)
		}
	}

	// All n workers present: assign ranks in arrival order, publish the
	// address book and the peer-plane secret (minted per world so a
	// worker's data listener only accepts its own world's peers — the
	// control token cannot serve, attach-mode workers have none), and
	// wait for every ready — the world-start barrier.
	var peerSecretRaw [16]byte
	if _, err := rand.Read(peerSecretRaw[:]); err != nil {
		return nil, fmt.Errorf("peer secret: %w", err)
	}
	peerSecret := hex.EncodeToString(peerSecretRaw[:])
	addrs := make([]string, n)
	for rank, wc := range t.conns {
		addrs[rank] = wc.peerAddr
		pidRank[wc.pid] = rank
	}
	for rank, wc := range t.conns {
		if err := WriteFrame(wc.c, opAssign, assignBody(rank, n, peerSecret, addrs)); err != nil {
			return nil, fmt.Errorf("assigning rank %d: %w", rank, err)
		}
	}
	for rank, wc := range t.conns {
		op, _, err := wc.read(deadline)
		if err != nil {
			return nil, fmt.Errorf("awaiting ready from rank %d: %w", rank, err)
		}
		if op != opReady {
			return nil, fmt.Errorf("rank %d sent op %d instead of ready", rank, op)
		}
	}

	// Monitors: a worker process dying mid-run fails the whole world
	// instead of hanging ranks that wait for its messages. Each monitor
	// owns its process's Wait; teardown reaps by joining the monitors.
	t.monitored = true
	for _, cmd := range t.procs {
		rank, okRank := pidRank[cmd.Process.Pid]
		if !okRank {
			rank = -1
		}
		t.procWG.Add(1)
		go func(cmd *exec.Cmd, rank int) {
			defer t.procWG.Done()
			err := cmd.Wait()
			if !t.quiescent() {
				t.fail(fmt.Errorf("dist: worker process for rank %d exited mid-run: %v", rank, err))
			}
		}(cmd, rank)
	}
	if ctx.Done() != nil {
		t.stopCancel = context.AfterFunc(ctx, func() {
			t.fail(ctx.Err())
		})
	}
	t.begin = time.Now()
	ok = true
	return t, nil
}

func init() { backend.Register(New()) }

// workerConn is the coordinator's control connection to one worker. After
// the handshake it is owned exclusively by that rank's process goroutine
// (the Transport contract makes rank operations rank-serial), so reads
// and writes need no locking; Close is the only concurrent call (from
// fail) and net.Conn guarantees it is safe.
type workerConn struct {
	c        net.Conn
	br       *bufio.Reader
	buf      []byte // write scratch, rank-goroutine only
	peerAddr string
	pid      int
}

func newWorkerConn(c net.Conn) *workerConn {
	return &workerConn{c: c, br: bufio.NewReader(c)}
}

// read returns the next frame; a zero deadline means block indefinitely.
func (wc *workerConn) read(deadline time.Time) (byte, []byte, error) {
	if err := wc.c.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	return ReadFrame(wc.br)
}

// expectHello consumes the worker's hello frame, checking the world
// secret when one is required.
func (wc *workerConn) expectHello(deadline time.Time, token string) error {
	op, body, err := wc.read(deadline)
	if err != nil {
		return fmt.Errorf("awaiting hello: %w", err)
	}
	if op != opHello {
		return fmt.Errorf("expected hello frame, got op %d", op)
	}
	got, peerAddr, pid, err := parseHello(body)
	if err != nil {
		return err
	}
	if token != "" && got != token {
		return fmt.Errorf("hello with wrong world secret")
	}
	wc.peerAddr, wc.pid = peerAddr, pid
	return nil
}

// write sends one frame through the connection's scratch buffer in a
// single Write call.
func (wc *workerConn) write(op byte, body []byte) error {
	wc.buf = AppendFrame(wc.buf[:0], op, body)
	_, err := wc.c.Write(wc.buf)
	return err
}

// shard is one rank's message/byte tally, written only by that rank's
// goroutine and summed in Finish (after every process returned, so the
// world's WaitGroup provides the happens-before edge), mirroring the
// in-process mailbox's sharded meters.
type shard struct {
	msgs  int64
	bytes int64
	_     [112]byte
}

// transport is the coordinator side of one dist run.
type transport struct {
	ctx   context.Context
	n     int
	begin time.Time

	conns    []*workerConn
	procs    []*exec.Cmd
	counters []shard
	// ops counts each rank's transport operations (rank-goroutine only):
	// the epoch coordinate for fault-injection rules.
	ops []int
	inj *faultinject.Injector

	mu        sync.Mutex
	err       error
	finishing bool

	// monitored reports whether per-process Wait monitors run (set once
	// the world started); teardown reaps through them when they do.
	monitored bool
	procWG    sync.WaitGroup

	stopCancel func() bool
}

// fail records the run's first fatal error and closes every control
// connection, unwinding all blocked operations. After Finish has begun it
// is a no-op (workers exiting at world end are not failures).
func (t *transport) fail(err error) {
	t.mu.Lock()
	if t.finishing || t.err != nil {
		t.mu.Unlock()
		return
	}
	t.err = err
	t.mu.Unlock()
	for _, wc := range t.conns {
		wc.c.Close()
	}
}

// quiescent reports whether the run already failed or is finishing — the
// states in which a worker exit is expected rather than fatal.
func (t *transport) quiescent() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finishing || t.err != nil
}

func (t *transport) runErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// raise converts an I/O failure on a control connection into the
// cancellation sentinel, preferring the run's root cause (recorded fail,
// then context cancellation) over the local symptom.
func (t *transport) raise(rank int, ioErr error) {
	if err := t.runErr(); err != nil {
		panic(backend.Canceled(err))
	}
	if err := t.ctx.Err(); err != nil {
		panic(backend.Canceled(err))
	}
	err := fmt.Errorf("dist: rank %d worker connection: %w", rank, ioErr)
	t.fail(err)
	panic(backend.Canceled(err))
}

// Charge discards modeled computation like the real backend: computation
// takes real time here.
func (t *transport) Charge(rank int, sec float64) {}

// SetResident is a no-op: the host's memory system pages for real.
func (t *transport) SetResident(rank int, bytes float64) {}

func (t *transport) Clock(rank int) float64 { return time.Since(t.begin).Seconds() }

// Idle cannot advance a wall clock.
func (t *transport) Idle(rank int, at float64) {}

// inject consults the fault injector before rank's control I/O at the
// given hook point. Drop severs the rank's control connection so the
// subsequent I/O fails through the ordinary lost-worker path; Delay
// sleeps here.
func (t *transport) inject(point string, rank int) {
	if t.inj == nil {
		return
	}
	epoch := t.ops[rank]
	t.ops[rank]++
	switch act, d := t.inj.Eval(point, rank, epoch); act {
	case faultinject.Drop:
		t.conns[rank].c.Close()
	case faultinject.Delay:
		time.Sleep(d)
	}
}

func (t *transport) Send(src, dst, tag int, data any, bytes int) {
	t.inject("dist.send", src)
	wc := t.conns[src]
	hdr := msgHeader(dst, tag, bytes, nil)
	body, err := spmd.AppendPayload(hdr, data)
	if err != nil {
		// A payload outside the wire codec is a programming error of the
		// same class as a tag mismatch: panic with the reason rather
		// than poisoning the run with a substrate error.
		panic(fmt.Sprintf("dist: process %d: %v", src, err))
	}
	if err := wc.write(opSend, body); err != nil {
		t.raise(src, err)
	}
	if src != dst {
		sh := &t.counters[src]
		sh.msgs++
		sh.bytes += int64(bytes)
	}
}

// recvMsg runs one request/response on dst's control connection and
// decodes the delivered message.
func (t *transport) recvMsg(dst int, reqOp byte, reqBody []byte) (src, tag int, data any) {
	t.inject("dist.recv", dst)
	wc := t.conns[dst]
	if err := wc.write(reqOp, reqBody); err != nil {
		t.raise(dst, err)
	}
	op, body, err := wc.read(time.Time{})
	if err != nil {
		t.raise(dst, err)
	}
	if op != opMsg {
		t.raise(dst, fmt.Errorf("expected message frame, got op %d", op))
	}
	src, tag, _, payload, err := parseMsgHeader(body)
	if err != nil {
		t.raise(dst, err)
	}
	data, _, err = spmd.DecodePayload(payload)
	if err != nil {
		t.raise(dst, fmt.Errorf("decoding message from %d: %w", src, err))
	}
	return src, tag, data
}

func (t *transport) Recv(src, dst, tag int) any {
	from, mtag, data := t.recvMsg(dst, opRecv, recvBody(src))
	if from != src {
		t.raise(dst, fmt.Errorf("asked for a message from %d, worker delivered one from %d", src, from))
	}
	if mtag != tag {
		panic(fmt.Sprintf("dist: process %d expected tag %d from %d, got %d", dst, tag, src, mtag))
	}
	return data
}

func (t *transport) RecvAny(dst, tag int) (int, any) {
	src, mtag, data := t.recvMsg(dst, opRecvAny, nil)
	if mtag != tag {
		panic(fmt.Sprintf("dist: process %d expected tag %d from any source, got %d from %d",
			dst, tag, mtag, src))
	}
	return src, data
}

// Finish runs the world-finish barrier (finish/bye with every live
// worker), tears the substrate down, and assembles the run summary.
func (t *transport) Finish() backend.Result {
	elapsed := time.Since(t.begin).Seconds()
	t.mu.Lock()
	t.finishing = true
	failedErr := t.err
	t.mu.Unlock()
	if t.stopCancel != nil {
		t.stopCancel()
		t.stopCancel = nil
	}
	if failedErr == nil && t.ctx.Err() == nil {
		deadline := time.Now().Add(10 * time.Second)
		for _, wc := range t.conns {
			wc.write(opFinish, nil) //nolint:errcheck // teardown is best-effort
		}
		for _, wc := range t.conns {
			wc.read(deadline) //nolint:errcheck // bye or EOF both end the world
		}
	}
	t.teardown()
	res := backend.Result{Makespan: elapsed, Clocks: make([]float64, t.n)}
	for i := range res.Clocks {
		res.Clocks[i] = elapsed
	}
	for i := range t.counters {
		res.Msgs += t.counters[i].msgs
		res.Bytes += t.counters[i].bytes
	}
	return res
}

// teardown closes connections and reaps worker processes. Workers exit on
// their own once their control connection closes; the kill is the
// backstop that bounds Wait.
func (t *transport) teardown() {
	if t.stopCancel != nil {
		t.stopCancel()
		t.stopCancel = nil
	}
	t.mu.Lock()
	t.finishing = true
	t.mu.Unlock()
	for _, wc := range t.conns {
		wc.c.Close()
	}
	for _, cmd := range t.procs {
		cmd.Process.Kill() //nolint:errcheck // already-exited is fine
	}
	if t.monitored {
		t.procWG.Wait()
	} else {
		for _, cmd := range t.procs {
			cmd.Wait() //nolint:errcheck // reap; exit status is not news here
		}
	}
	t.procs = nil
}

// failedTransport is what NewTransport returns when the world could not
// start (the Runner interface has no error channel): every operation a
// rank attempts raises the cancellation sentinel carrying the start
// error, so the run reports it instead of executing on a half-built
// substrate.
type failedTransport struct {
	n   int
	err error
}

func (f *failedTransport) Charge(rank int, sec float64)         { panic(backend.Canceled(f.err)) }
func (f *failedTransport) SetResident(rank int, bytes float64)  { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Clock(rank int) float64               { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Idle(rank int, at float64)            { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Send(src, dst, tag int, d any, b int) { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Recv(src, dst, tag int) any           { panic(backend.Canceled(f.err)) }
func (f *failedTransport) RecvAny(dst, tag int) (int, any)      { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Finish() backend.Result {
	return backend.Result{Clocks: make([]float64, f.n)}
}
