package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The wire protocol: every connection carries length-prefixed frames
//
//	[u32 big-endian length] [u8 op] [body...]
//
// where length counts the op byte plus the body. Three kinds of
// connection speak it:
//
//   - control (coordinator ↔ worker): the handshake (hello/assign/ready),
//     then the coordinator-driven operation stream — opSend (fire and
//     forget), opRecv/opRecvAny (request) answered by opMsg (response),
//     and the opFinish/opBye finish barrier. The Transport contract makes
//     rank r's operations rank-serial, so a control connection never has
//     more than one outstanding request.
//   - peer (worker ↔ worker): one opPeerHello identifying the dialer,
//     then a one-way opData stream. Peer connections are dialed lazily on
//     the first send toward that rank.
//
// Message payloads inside opSend/opData/opMsg are spmd wire-codec bytes;
// workers forward them opaquely and only the coordinator encodes and
// decodes.
const (
	opHello byte = 1 + iota
	opAssign
	opReady
	opSend
	opRecv
	opRecvAny
	opMsg
	opFinish
	opBye
	opPeerHello
	opData
)

// maxFrame bounds a frame so a corrupt or hostile length prefix cannot
// trigger a gigantic allocation.
const maxFrame = 1 << 30

// AppendFrame appends a complete frame to buf (a reusable scratch
// buffer) so the caller can issue it as one Write. The frame primitives
// are exported because the elastic backend's control plane speaks the
// same length-prefixed format (with its own op space).
func AppendFrame(buf []byte, op byte, body []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(body)))
	buf = append(buf, op)
	return append(buf, body...)
}

// WriteFrame sends one frame in a single Write call.
func WriteFrame(w io.Writer, op byte, body []byte) error {
	_, err := w.Write(AppendFrame(make([]byte, 0, 5+len(body)), op, body))
	return err
}

// ReadFrame reads one frame. The returned body is freshly allocated and
// owned by the caller.
func ReadFrame(br *bufio.Reader) (op byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 || length > maxFrame {
		return 0, nil, fmt.Errorf("dist: invalid frame length %d", length)
	}
	body = make([]byte, length-1)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return hdr[4], body, nil
}

// Handshake and header bodies are hand-rolled uvarint/fixed-width
// encodings, tiny cousins of the spmd payload codec.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader cursors over a frame body; its err field latches the first
// truncation so call sites check once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated frame body at offset %d", r.off)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) string() string {
	if r.err != nil {
		return ""
	}
	n, w := binary.Uvarint(r.b[r.off:])
	// Compare in uint64 space: a corrupt huge length must fail cleanly,
	// not overflow the int conversion into a passing bounds check (the
	// coordinator parses hello frames from arbitrary connections).
	if w <= 0 || n > uint64(len(r.b)-r.off-w) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off+w : r.off+w+int(n)])
	r.off += w + int(n)
	return s
}

func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	return r.b[r.off:]
}

// hello (worker → coordinator): authenticate and advertise.
func helloBody(token, peerAddr string, pid int) []byte {
	buf := appendString(nil, token)
	buf = appendString(buf, peerAddr)
	return binary.BigEndian.AppendUint64(buf, uint64(pid))
}

func parseHello(b []byte) (token, peerAddr string, pid int, err error) {
	r := &reader{b: b}
	token, peerAddr = r.string(), r.string()
	pid = int(r.u64())
	return token, peerAddr, pid, r.err
}

// assign (coordinator → worker): rank, world size, the peer-plane
// secret, and every rank's peer address. Sent only after all n hellos
// arrived — the world-start barrier's first half. The secret is minted
// per world by the coordinator and echoed in every peerhello, so a
// worker's data plane only accepts connections from its own world (the
// control-plane token cannot serve here: attach-mode workers have none).
func assignBody(rank, n int, peerSecret string, addrs []string) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = appendString(buf, peerSecret)
	for _, a := range addrs {
		buf = appendString(buf, a)
	}
	return buf
}

func parseAssign(b []byte) (rank, n int, peerSecret string, addrs []string, err error) {
	r := &reader{b: b}
	rank, n = int(r.u32()), int(r.u32())
	if r.err == nil && (n <= 0 || n > maxFrame) {
		return 0, 0, "", nil, fmt.Errorf("dist: invalid assign world size %d", n)
	}
	peerSecret = r.string()
	addrs = make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		addrs = append(addrs, r.string())
	}
	return rank, n, peerSecret, addrs, r.err
}

// send (coordinator → worker) / data (worker → worker) / msg (worker →
// coordinator) share one header shape: the varying rank field (dst for
// send, src for data and msg), the tag, the metered byte count, then the
// opaque payload.
func msgHeader(rank, tag, metered int, payload []byte) []byte {
	buf := make([]byte, 0, 20+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rank))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(tag)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(metered)))
	return append(buf, payload...)
}

func parseMsgHeader(b []byte) (rank, tag, metered int, payload []byte, err error) {
	r := &reader{b: b}
	rank = int(r.u32())
	tag = int(int64(r.u64()))
	metered = int(int64(r.u64()))
	return rank, tag, metered, r.rest(), r.err
}

func recvBody(src int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(src))
}

func parseRecv(b []byte) (src int, err error) {
	r := &reader{b: b}
	src = int(r.u32())
	return src, r.err
}

func peerHelloBody(from int, peerSecret string) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(from))
	return appendString(buf, peerSecret)
}

func parsePeerHello(b []byte) (from int, peerSecret string, err error) {
	r := &reader{b: b}
	from = int(r.u32())
	peerSecret = r.string()
	return from, peerSecret, r.err
}
