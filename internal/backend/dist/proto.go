package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// The wire protocol: every connection carries length-prefixed frames
//
//	[u32 big-endian length] [u8 op] [body...]
//
// where length counts the op byte plus the body. Two kinds of connection
// speak it:
//
//   - control (coordinator ↔ worker): the handshake (hello/assign/ready),
//     then two one-way streams riding the same connection — the
//     coordinator's send stream down (fire and forget), and the worker's
//     eager opDeliver stream up (every message that reaches the worker's
//     rank is pushed to the coordinator immediately, no request needed;
//     the coordinator banks deliveries in a per-rank inbox so Recv and
//     RecvAny are local pops). The opFinish/opBye finish barrier ends the
//     world, after which the same connection can host the next world's
//     handshake — worker processes and their control connections are
//     reusable (see the coordinator's worker pool).
//   - peer (worker ↔ worker): one opPeerHello identifying the dialer,
//     then a one-way opData stream. Peer connections are dialed lazily on
//     the first relayed message toward that rank.
//
// The down stream has two send ops for the two routing modes:
//
//   - opSend is destination-routed (the default): the coordinator writes
//     it down the *destination* rank's control connection, and that
//     worker pushes the body back up verbatim as an opDeliver — the
//     message takes one worker visit, two socket crossings end to end.
//   - opRelay is source-routed (WithPeerRouting): the coordinator writes
//     it down the *source* rank's control connection; that worker
//     re-headers it as opData, forwards it across the peer plane to the
//     destination's worker, which pushes it up as opDeliver — three
//     crossings, but the bytes traverse the worker↔worker fabric, which
//     is what a multi-host deployment exercises.
//
// Any frame may be an opBatch container: back-to-back frames toward one
// destination, coalesced by Writer into a single multi-message frame
// (and a single TCP segment). Readers expand batches with forEachFrame;
// batches never nest.
//
// Message payloads inside opSend/opRelay/opData/opDeliver are spmd
// wire-codec bytes; workers forward them opaquely and only the
// coordinator encodes and decodes.
const (
	opHello byte = 1 + iota
	opAssign
	opReady
	opSend
	opRelay
	opDeliver
	opFinish
	opBye
	opPeerHello
	opData
	opBatch
)

// maxFrame bounds a frame so a corrupt or hostile length prefix cannot
// trigger a gigantic allocation.
const maxFrame = 1 << 30

// writerFlushBytes caps how much a Writer buffers before flushing
// inline: it bounds both coalescing memory and the size of one opBatch
// container.
const writerFlushBytes = 32 << 10

// AppendFrame appends a complete frame to buf (a reusable scratch
// buffer) so the caller can issue it as one Write. The frame primitives
// are exported because the elastic backend's control plane speaks the
// same length-prefixed format (with its own op space).
func AppendFrame(buf []byte, op byte, body []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(body)))
	buf = append(buf, op)
	return append(buf, body...)
}

// frameScratch recycles WriteFrame's assembly buffers: handshake paths
// here and the elastic control plane write frames often enough that a
// per-frame make shows up in profiles.
var frameScratch = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// WriteFrame sends one frame in a single Write call, assembling it in a
// pooled scratch buffer. For high-rate paths use Writer, which coalesces
// consecutive frames too.
func WriteFrame(w io.Writer, op byte, body []byte) error {
	bp := frameScratch.Get().(*[]byte)
	buf := AppendFrame((*bp)[:0], op, body)
	_, err := w.Write(buf)
	*bp = buf[:0]
	frameScratch.Put(bp)
	return err
}

// ReadFrame reads one frame. The returned body is freshly allocated and
// owned by the caller.
func ReadFrame(br *bufio.Reader) (op byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 || length > maxFrame {
		return 0, nil, fmt.Errorf("dist: invalid frame length %d", length)
	}
	body = make([]byte, length-1)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return hdr[4], body, nil
}

// readFrameInto is ReadFrame for single-reader hot loops: the body lands
// in *scratch (grown as needed and retained across calls), so a loop
// that consumes or copies each frame before the next read allocates
// nothing in steady state. The returned body aliases *scratch and is
// only valid until the next call with the same scratch. The header is
// peeked out of the bufio buffer rather than read through io.ReadFull,
// whose interface indirection heap-allocates the 5-byte scratch on every
// call.
func readFrameInto(br *bufio.Reader, scratch *[]byte) (op byte, body []byte, err error) {
	hdr, err := br.Peek(5)
	if err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 || length > maxFrame {
		return 0, nil, fmt.Errorf("dist: invalid frame length %d", length)
	}
	op = hdr[4]
	br.Discard(5) //nolint:errcheck // 5 bytes are buffered: Peek succeeded
	n := int(length - 1)
	if cap(*scratch) < n {
		*scratch = make([]byte, n, n+n/2+64)
	}
	body = (*scratch)[:n]
	if err := readFull(br, body); err != nil {
		return 0, nil, err
	}
	return op, body, nil
}

// readFull is io.ReadFull on the concrete reader: the destination slice
// stays on the caller's stack instead of escaping through the io.Reader
// interface.
func readFull(br *bufio.Reader, p []byte) error {
	for n := 0; n < len(p); {
		k, err := br.Read(p[n:])
		n += k
		if n < len(p) && err != nil {
			return err
		}
	}
	return nil
}

// pendingFrame reports whether another complete frame is already
// buffered in br — the flush-on-idle predicate: a reader that just
// handled a frame defers flushing its write side while the next frame
// can be processed without blocking, so back-to-back traffic coalesces,
// and flushes the moment it would otherwise go to sleep.
func pendingFrame(br *bufio.Reader) bool {
	if br.Buffered() < 5 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	length := binary.BigEndian.Uint32(hdr)
	return length <= uint32(br.Buffered()-4)
}

// forEachFrame invokes fn once per logical frame: directly for a plain
// frame, and once per contained frame for an opBatch container. Batches
// never nest; sub-frame bodies alias the container's buffer.
func forEachFrame(op byte, body []byte, fn func(op byte, body []byte) error) error {
	if op != opBatch {
		return fn(op, body)
	}
	for len(body) > 0 {
		if len(body) < 4 {
			return fmt.Errorf("dist: truncated batch container")
		}
		length := binary.BigEndian.Uint32(body)
		if length == 0 || uint32(len(body)-4) < length {
			return fmt.Errorf("dist: invalid batched frame length %d", length)
		}
		sub := body[4 : 4+length]
		if sub[0] == opBatch {
			return fmt.Errorf("dist: nested batch container")
		}
		if err := fn(sub[0], sub[1:]); err != nil {
			return err
		}
		body = body[4+length:]
	}
	return nil
}

// Writer coalesces frames toward one connection. Write appends a frame
// to the pending buffer without touching the socket; Flush issues
// everything pending as one Write call — a single frame verbatim, or
// several wrapped in one opBatch container (one multi-message frame, one
// TCP segment). Writers are safe for concurrent use; the first I/O error
// latches and fails every subsequent call.
//
// The flush discipline is the caller's contract: every goroutine that
// Writes must Flush before blocking (Writer cannot know when the
// sender's burst is over). Write self-flushes past writerFlushBytes so
// pending data and batch frames stay bounded. The type is exported
// because the elastic backend's control plane shares the frame format.
type Writer struct {
	mu     sync.Mutex
	dst    io.Writer
	buf    []byte // 5 bytes reserved for a batch header, then pending frames
	frames int
	err    error
}

// NewWriter returns a coalescing frame writer over dst (an unbuffered
// connection: Writer is the buffer).
func NewWriter(dst io.Writer) *Writer {
	w := &Writer{dst: dst, buf: make([]byte, 5, 4096)}
	return w
}

// Write appends one frame to the pending buffer, flushing inline only
// when the buffer exceeds writerFlushBytes.
func (w *Writer) Write(op byte, body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = AppendFrame(w.buf, op, body)
	w.frames++
	if len(w.buf) >= writerFlushBytes {
		return w.flushLocked()
	}
	return nil
}

// Flush issues all pending frames in one Write call; a no-op when
// nothing is pending.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.flushLocked()
}

// FlushN is Flush reporting how many frames it put on the wire (0 when
// nothing was pending; >1 means the frames went out coalesced in one
// opBatch container). The transport's trace instrumentation uses the
// count to record flush and batch events only for flushes that did work.
func (w *Writer) FlushN() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	n := w.frames
	return n, w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if w.frames == 0 {
		return nil
	}
	out := w.buf[5:]
	if w.frames > 1 {
		binary.BigEndian.PutUint32(w.buf, uint32(1+len(w.buf)-5))
		w.buf[4] = opBatch
		out = w.buf
	}
	_, err := w.dst.Write(out)
	if cap(w.buf) > 4*writerFlushBytes {
		w.buf = make([]byte, 5, 4096)
	} else {
		w.buf = w.buf[:5]
	}
	w.frames = 0
	if err != nil {
		w.err = err
	}
	return err
}

// Err returns the writer's latched I/O error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Handshake and header bodies are hand-rolled uvarint/fixed-width
// encodings, tiny cousins of the spmd payload codec.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader cursors over a frame body; its err field latches the first
// truncation so call sites check once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated frame body at offset %d", r.off)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) string() string {
	if r.err != nil {
		return ""
	}
	n, w := binary.Uvarint(r.b[r.off:])
	// Compare in uint64 space: a corrupt huge length must fail cleanly,
	// not overflow the int conversion into a passing bounds check (the
	// coordinator parses hello frames from arbitrary connections).
	if w <= 0 || n > uint64(len(r.b)-r.off-w) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off+w : r.off+w+int(n)])
	r.off += w + int(n)
	return s
}

func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	return r.b[r.off:]
}

// hello (worker → coordinator): authenticate and advertise.
func helloBody(token, peerAddr string, pid int) []byte {
	buf := appendString(nil, token)
	buf = appendString(buf, peerAddr)
	return binary.BigEndian.AppendUint64(buf, uint64(pid))
}

func parseHello(b []byte) (token, peerAddr string, pid int, err error) {
	r := &reader{b: b}
	token, peerAddr = r.string(), r.string()
	pid = int(r.u64())
	return token, peerAddr, pid, r.err
}

// assign (coordinator → worker): rank, world size, the peer-plane
// secret, and every rank's peer address. Sent only after all n hellos
// arrived — the world-start barrier's first half. The secret is minted
// per world by the coordinator and echoed in every peerhello, so a
// worker's data plane only accepts connections from its own world (the
// control-plane token cannot serve here: attach-mode workers have none).
func assignBody(rank, n int, peerSecret string, addrs []string) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = appendString(buf, peerSecret)
	for _, a := range addrs {
		buf = appendString(buf, a)
	}
	return buf
}

func parseAssign(b []byte) (rank, n int, peerSecret string, addrs []string, err error) {
	r := &reader{b: b}
	rank, n = int(r.u32()), int(r.u32())
	if r.err == nil && (n <= 0 || n > maxFrame) {
		return 0, 0, "", nil, fmt.Errorf("dist: invalid assign world size %d", n)
	}
	peerSecret = r.string()
	addrs = make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		addrs = append(addrs, r.string())
	}
	return rank, n, peerSecret, addrs, r.err
}

// send/relay (coordinator → worker) / data (worker → worker) / deliver
// (worker → coordinator) share one header shape: the varying rank field
// (src for send, data, and deliver — the destination is implied by which
// connection carries the frame — and dst for relay, whose whole point is
// naming a rank the carrying connection does not), the tag, the metered
// byte count, then the opaque payload. opSend sharing the deliver shape
// is what makes the destination worker's hot path a verbatim push: it
// republishes the body untouched under the opDeliver op.
func appendMsgHeader(buf []byte, rank, tag, metered int) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(rank))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(tag)))
	return binary.BigEndian.AppendUint64(buf, uint64(int64(metered)))
}

func msgHeader(rank, tag, metered int, payload []byte) []byte {
	buf := appendMsgHeader(make([]byte, 0, 20+len(payload)), rank, tag, metered)
	return append(buf, payload...)
}

func parseMsgHeader(b []byte) (rank, tag, metered int, payload []byte, err error) {
	r := &reader{b: b}
	rank = int(r.u32())
	tag = int(int64(r.u64()))
	metered = int(int64(r.u64()))
	return rank, tag, metered, r.rest(), r.err
}

func peerHelloBody(from int, peerSecret string) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(from))
	return appendString(buf, peerSecret)
}

func parsePeerHello(b []byte) (from int, peerSecret string, err error) {
	r := &reader{b: b}
	from = int(r.u32())
	peerSecret = r.string()
	return from, peerSecret, r.err
}
