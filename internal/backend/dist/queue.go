package dist

import "sync"

// inMsg is one banked message: the delivery header plus the opaque
// payload bytes the coordinator will decode.
type inMsg struct {
	src     int
	tag     int
	metered int
	payload []byte
}

// inQueue is the coordinator's per-rank inbox for eagerly pushed
// deliveries: per-source FIFO queues plus an arrival-order token list, a
// deliberately small cousin of the in-process mailbox (same semantics —
// per-pair FIFO always, cross-source arrival order for popAny — without
// the pooling and cache-padding machinery the host-speed fabric needs; an
// inbox's depth is bounded by messages in flight toward one rank). The
// owning rank's goroutine banks deliveries it reads off its control
// connection and consumes them with the non-blocking tryPop/tryPopAny (it
// blocks on the connection read, never on the inbox); the blocking
// pop/popAny plus close serve callers with concurrent producers.
type inQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	qs      []msgFIFO
	order   []int32 // arrival-order source tokens, ohead..len live
	ohead   int
	stale   []int32 // per-source tokens orphaned by targeted pops
	nstale  int
	pending int
	closed  bool
}

// msgFIFO is one source's queue: a slice consumed from head, compacted
// when the dead prefix dominates.
type msgFIFO struct {
	buf  []inMsg
	head int
}

func (q *msgFIFO) push(m inMsg) { q.buf = append(q.buf, m) }

func (q *msgFIFO) len() int { return len(q.buf) - q.head }

func (q *msgFIFO) pop() inMsg {
	m := q.buf[q.head]
	q.buf[q.head] = inMsg{}
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	} else if q.head > 64 && 2*q.head > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = inMsg{}
		}
		q.buf, q.head = q.buf[:n], 0
	}
	return m
}

func newInQueue(n int) *inQueue {
	q := &inQueue{qs: make([]msgFIFO, n), stale: make([]int32, n)}
	q.cond.L = &q.mu
	return q
}

func (q *inQueue) push(m inMsg) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.qs[m.src].push(m)
	q.order = append(q.order, int32(m.src))
	q.pending++
	q.mu.Unlock()
	q.cond.Broadcast()
}

// compactOrder drops consumed tokens once they dominate, keeping token
// memory proportional to outstanding messages.
func (q *inQueue) compactOrder() {
	if q.ohead > 64 && 2*q.ohead > len(q.order) {
		n := copy(q.order, q.order[q.ohead:])
		q.order, q.ohead = q.order[:n], 0
	}
}

// noteStale records that src's oldest token lost its message to a
// targeted pop and rewrites the live token region once stale tokens
// outnumber live ones (live tokens == pending), bounding order memory by
// outstanding messages even when the inbox is only ever drained by
// targeted pops — mirroring the in-process mailbox's compaction.
func (q *inQueue) noteStale(src int) {
	q.stale[src]++
	q.nstale++
	if 2*q.nstale > len(q.order)-q.ohead {
		live := q.order[q.ohead:]
		out := q.order[:0]
		for _, s := range live {
			if q.stale[s] > 0 {
				q.stale[s]--
				continue
			}
			out = append(out, s)
		}
		q.order, q.ohead, q.nstale = out, 0, 0
	}
}

// pop blocks until a message from src is available, returning ok=false
// when the queue is closed instead.
func (q *inQueue) pop(src int) (inMsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.qs[src].len() == 0 {
		if q.closed {
			return inMsg{}, false
		}
		q.cond.Wait()
	}
	m := q.qs[src].pop()
	q.pending--
	// The popped message's token (the oldest of its source) is now
	// orphaned; popAny skips it via the stale count, and noteStale
	// compacts once orphans dominate.
	q.noteStale(src)
	return m, true
}

// popAny blocks until any message is available and returns the oldest by
// cross-source arrival order; ok=false when the queue is closed.
func (q *inQueue) popAny() (inMsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.pending == 0 {
		if q.closed {
			return inMsg{}, false
		}
		q.cond.Wait()
	}
	for {
		src := int(q.order[q.ohead])
		q.ohead++
		q.compactOrder()
		if q.qs[src].len() > 0 {
			m := q.qs[src].pop()
			q.pending--
			return m, true
		}
		// Token orphaned by a targeted pop: settle and keep scanning.
		q.stale[src]--
		q.nstale--
	}
}

// tryPop is pop without the blocking: the oldest message from src, or
// ok=false immediately when none is banked.
func (q *inQueue) tryPop(src int) (inMsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.qs[src].len() == 0 {
		return inMsg{}, false
	}
	m := q.qs[src].pop()
	q.pending--
	q.noteStale(src)
	return m, true
}

// tryPopAny is popAny without the blocking: the oldest banked message by
// cross-source arrival order, or ok=false immediately when none is.
func (q *inQueue) tryPopAny() (inMsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.pending == 0 {
		return inMsg{}, false
	}
	for {
		src := int(q.order[q.ohead])
		q.ohead++
		q.compactOrder()
		if q.qs[src].len() > 0 {
			m := q.qs[src].pop()
			q.pending--
			return m, true
		}
		q.stale[src]--
		q.nstale--
	}
}

func (q *inQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
