package dist_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/collective"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// TestMain lets this test binary serve as its own dist worker: the
// backend's default mode self-spawns the current binary, and MaybeWorker
// diverts those child processes into the worker loop before any test
// runs.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

func runOn(t *testing.T, r backend.Runner, n int, body func(p *spmd.Proc)) (*spmd.Result, error) {
	t.Helper()
	w, err := spmd.NewWorldOn(context.Background(), r, n, machine.IBMSP())
	if err != nil {
		t.Fatalf("NewWorldOn: %v", err)
	}
	return w.Run(body)
}

// TestDistRegistered pins the registry entry the arch facade resolves.
func TestDistRegistered(t *testing.T) {
	r, ok := backend.ByName("dist")
	if !ok {
		t.Fatal(`backend "dist" not registered`)
	}
	if r.Virtual() {
		t.Error("dist must be a wall-clock backend")
	}
}

// TestDistExchange runs a ring exchange plus collectives across worker
// processes and checks results and meters against the real backend: the
// communication volume must be identical, only the substrate differs.
func TestDistExchange(t *testing.T) {
	const n = 4
	prog := func(sums []float64) func(p *spmd.Proc) {
		return func(p *spmd.Proc) {
			rank := p.Rank()
			next, prev := (rank+1)%n, (rank+n-1)%n
			spmd.SendT(p, next, 7, []float64{float64(rank), float64(rank * rank)})
			got := spmd.Recv[[]float64](p, prev, 7)
			if got[0] != float64(prev) || got[1] != float64(prev*prev) {
				panic(fmt.Sprintf("rank %d: bad ring payload %v", rank, got))
			}
			// Self-send exercises the local short-circuit path.
			p.Send(rank, 9, int32(rank))
			if v := spmd.Recv[int32](p, rank, 9); v != int32(rank) {
				panic("self-send corrupted")
			}
			sum := collective.AllReduce(p, float64(rank+1), func(a, b float64) float64 { return a + b })
			sums[rank] = sum
		}
	}

	distSums := make([]float64, n)
	distRes, err := runOn(t, dist.New(), n, prog(distSums))
	if err != nil {
		t.Fatalf("dist run: %v", err)
	}
	realSums := make([]float64, n)
	realRes, err := runOn(t, backend.Real(), n, prog(realSums))
	if err != nil {
		t.Fatalf("real run: %v", err)
	}
	for rank, sum := range distSums {
		if sum != 10 {
			t.Errorf("rank %d: allreduce sum = %g, want 10", rank, sum)
		}
		if sum != realSums[rank] {
			t.Errorf("rank %d: dist %g != real %g", rank, sum, realSums[rank])
		}
	}
	if distRes.Msgs != realRes.Msgs || distRes.Bytes != realRes.Bytes {
		t.Errorf("meters differ: dist %d msgs/%d bytes, real %d msgs/%d bytes",
			distRes.Msgs, distRes.Bytes, realRes.Msgs, realRes.Bytes)
	}
	if distRes.Makespan <= 0 {
		t.Errorf("dist makespan = %g, want positive wall-clock", distRes.Makespan)
	}
}

// TestDistRecvAny checks cross-source receives: rank 0 collects one
// tagged message from every other rank, in whatever order they arrive.
func TestDistRecvAny(t *testing.T) {
	const n = 4
	got := make([]bool, n)
	_, err := runOn(t, dist.New(), n, func(p *spmd.Proc) {
		if p.Rank() != 0 {
			spmd.SendT(p, 0, 3, p.Rank())
			return
		}
		for i := 1; i < n; i++ {
			src, v := p.RecvAny(3)
			if v.(int) != src {
				panic(fmt.Sprintf("payload %v from %d", v, src))
			}
			got[src] = true
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for src := 1; src < n; src++ {
		if !got[src] {
			t.Errorf("no message received from rank %d", src)
		}
	}
}

// TestDistCancellation pins the unwinding contract: cancelling the run's
// context must release ranks blocked in cross-process receives and
// return the context's error, exactly like the in-process mailbox
// sentinel path.
func TestDistCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w, err := spmd.NewWorldOn(ctx, dist.New(), 2, machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(func(p *spmd.Proc) {
			p.Recv((p.Rank()+1)%2, 1) // nobody sends: blocks until cancelled
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled dist run did not unwind")
	}
}

// liveChildren lists this process's live child PIDs (Linux); ok reports
// whether the kernel exposes the listing. The children files are
// per-thread and the runtime forks from arbitrary threads, so every
// task's listing is gathered.
func liveChildren() (pids []string, ok bool) {
	tasks, err := os.ReadDir("/proc/self/task")
	if err != nil {
		return nil, false
	}
	for _, task := range tasks {
		blob, err := os.ReadFile("/proc/self/task/" + task.Name() + "/children")
		if err != nil {
			continue
		}
		pids = append(pids, strings.Fields(string(blob))...)
	}
	sort.Strings(pids)
	return pids, true
}

// TestDistCancellationReapsWorkers pins the teardown half of the
// cancellation contract: when a mid-run cancellation unwinds the world,
// Run must not return until the spawned worker processes are killed and
// reaped and the coordinator's service goroutines (accept loop, per-rank
// readers, process monitors) have exited. Run under -race, a leak shows
// up as the goroutine count never settling.
func TestDistCancellationReapsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	w, err := spmd.NewWorldOn(ctx, dist.New(), 4, machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	_, err = w.Run(func(p *spmd.Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 1) // rank 1 never sends: blocks until cancelled
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	// Workers reaped: Run's return implies teardown killed and waited the
	// spawned processes, so none may survive as children (zombies included
	// — a reaped child leaves the kernel's children listing).
	if pids, ok := liveChildren(); ok && len(pids) > 0 {
		t.Errorf("worker processes survived cancellation: pids %v", pids)
	}
	// No goroutine leak: everything the run started winds down (the
	// runtime needs a moment to retire exiting goroutines).
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for ; n > before+1 && time.Now().Before(deadline); n = runtime.NumGoroutine() {
		time.Sleep(10 * time.Millisecond)
	}
	if n > before+1 {
		t.Errorf("goroutines leaked after cancelled run: %d before, %d after", before, n)
	}
}

// TestDistFaultInjection exercises the injector hooks on the dist
// control plane: Delay perturbs timing without changing results, and
// Drop severs a rank's control connection mid-run, which must surface
// through the ordinary lost-worker path as a run error, not a hang.
func TestDistFaultInjection(t *testing.T) {
	const n = 2
	ring := func(p *spmd.Proc) {
		rank := p.Rank()
		spmd.SendT(p, (rank+1)%n, 5, rank)
		if got := spmd.Recv[int](p, (rank+1)%n, 5); got != (rank+1)%n {
			panic(fmt.Sprintf("rank %d: bad payload %d", rank, got))
		}
	}

	delay := faultinject.New(faultinject.Rule{
		Point: "dist.send", Rank: faultinject.AnyRank, Epoch: faultinject.AnyEpoch,
		Count: 2, Action: faultinject.Delay, Delay: 5 * time.Millisecond,
	})
	if _, err := runOn(t, dist.New(dist.WithInjector(delay)), n, ring); err != nil {
		t.Fatalf("run with injected delays: %v", err)
	}
	if got := delay.Fired("dist.send"); got != 2 {
		t.Errorf("delay rule fired %d times, want 2", got)
	}

	drop := faultinject.New(faultinject.Rule{
		Point: "dist.send", Rank: 1, Epoch: 0, Action: faultinject.Drop,
	})
	done := make(chan error, 1)
	go func() {
		w, err := spmd.NewWorldOn(context.Background(), dist.New(dist.WithInjector(drop)), n, machine.IBMSP())
		if err != nil {
			done <- err
			return
		}
		_, err = w.Run(ring)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a dropped control connection returned nil error")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run with a dropped control connection hung")
	}
	if got := drop.Fired("dist.send"); got != 1 {
		t.Errorf("drop rule fired %d times, want 1", got)
	}
}

// TestDistCrashedWorker is the crash-hardening regression: killing one
// worker process mid-run must surface as a run error on every rank —
// including ranks blocked waiting for the dead rank's messages — not as
// a hang.
func TestDistCrashedWorker(t *testing.T) {
	t.Setenv("ARCHDIST_CRASH_RANK", "1") // worker for rank 1 dies on its first send
	const n = 4
	done := make(chan error, 1)
	go func() {
		_, err := runOn(t, dist.New(), n, func(p *spmd.Proc) {
			rank := p.Rank()
			spmd.SendT(p, (rank+1)%n, 5, rank)
			spmd.Recv[int](p, (rank+n-1)%n, 5)
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a crashed worker returned nil error")
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("crash surfaced as cancellation, want a worker failure: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run with a crashed worker hung")
	}
}

// TestDistAttach exercises attach mode: workers pre-started on their own
// listeners (cmd/archworker's loop, run in-process here), a coordinator
// that dials instead of spawning.
func TestDistAttach(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[i] = ln.Addr().String()
		go dist.Serve(ln) //nolint:errcheck // ends when the listener closes
	}
	var got int
	res, err := runOn(t, dist.New(dist.WithWorkers(addrs...)), n, func(p *spmd.Proc) {
		v := collective.Reduce(p, 0, p.Rank()+1, func(a, b int) int { return a + b })
		if p.Rank() == 0 {
			got = v
		}
	})
	if err != nil {
		t.Fatalf("attach run: %v", err)
	}
	if got != 6 {
		t.Errorf("reduce = %d, want 6", got)
	}
	if res.Msgs != n-1 {
		t.Errorf("msgs = %d, want %d", res.Msgs, n-1)
	}
}

// TestDistStartFailures pins that unstartable worlds report errors
// instead of hanging or half-running.
func TestDistStartFailures(t *testing.T) {
	t.Run("too-few-attached-workers", func(t *testing.T) {
		_, err := runOn(t, dist.New(dist.WithWorkers("127.0.0.1:1")), 2, func(p *spmd.Proc) {
			p.Charge(0)
		})
		if err == nil || !strings.Contains(err.Error(), "world start") {
			t.Fatalf("err = %v, want world start error", err)
		}
	})
	t.Run("unspawnable-worker-command", func(t *testing.T) {
		r := dist.New(dist.WithWorkerCommand("/nonexistent/archdist-worker"), dist.WithHandshakeTimeout(5*time.Second))
		_, err := runOn(t, r, 2, func(p *spmd.Proc) {
			p.Charge(0)
		})
		if err == nil || !strings.Contains(err.Error(), "world start") {
			t.Fatalf("err = %v, want world start error", err)
		}
	})
}

// TestDistPushBeforeRecv pins the eager-push inbox contract: deliveries
// that arrive before the destination ever calls Recv for them are banked
// in the rank's inbox and later popped in per-pair FIFO order. Rank 0
// fires a sequenced burst at rank 1 and then a marker at rank 2, which
// relays it to rank 1; rank 1 blocks on the relay first — so the burst
// arrives while it waits on a different pair and goes through the banked
// path, not the direct-consume fast path — then drains the burst and
// checks the sequence survived intact. (The marker must ride another
// pair: tags are order checks over the per-pair FIFO, so a same-pair
// marker would be a protocol violation, not a reordering probe.)
func TestDistPushBeforeRecv(t *testing.T) {
	const burst = 48
	_, err := runOn(t, dist.New(), 3, func(p *spmd.Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < burst; i++ {
				spmd.SendT(p, 1, 4, i)
			}
			spmd.SendT(p, 2, 5, -1)
		case 2:
			spmd.SendT(p, 1, 5, spmd.Recv[int](p, 0, 5))
		case 1:
			if v := spmd.Recv[int](p, 2, 5); v != -1 {
				panic(fmt.Sprintf("marker payload %d", v))
			}
			for i := 0; i < burst; i++ {
				if v := spmd.Recv[int](p, 0, 4); v != i {
					panic(fmt.Sprintf("burst out of order: got %d at position %d", v, i))
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestDistRecvAnyFIFOPerSource pins inbox fairness for cross-source
// receives: whatever interleaving RecvAny observes across senders, each
// individual sender's messages must arrive in send order — per-pair FIFO
// survives the eager-push inbox, exactly as on the in-process backends.
func TestDistRecvAnyFIFOPerSource(t *testing.T) {
	const n, k = 4, 8
	_, err := runOn(t, dist.New(), n, func(p *spmd.Proc) {
		if p.Rank() != 0 {
			for i := 0; i < k; i++ {
				spmd.SendT(p, 0, 2, i)
			}
			return
		}
		next := make([]int, n)
		for i := 0; i < (n-1)*k; i++ {
			src, v := p.RecvAny(2)
			if got := v.(int); got != next[src] {
				panic(fmt.Sprintf("source %d out of order: got seq %d, want %d", src, got, next[src]))
			}
			next[src]++
		}
		for src := 1; src < n; src++ {
			if next[src] != k {
				panic(fmt.Sprintf("source %d delivered %d of %d messages", src, next[src], k))
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestDistPeerRoutingParity runs the same program under destination
// routing (default) and source routing (WithPeerRouting, exercising the
// worker↔worker data plane) and demands identical results and meters —
// routing mode is an implementation detail, not a semantic.
func TestDistPeerRoutingParity(t *testing.T) {
	const n = 3
	prog := func(sums []float64) func(p *spmd.Proc) {
		return func(p *spmd.Proc) {
			rank := p.Rank()
			spmd.SendT(p, (rank+1)%n, 7, []float64{float64(rank)})
			got := spmd.Recv[[]float64](p, (rank+n-1)%n, 7)
			if got[0] != float64((rank+n-1)%n) {
				panic(fmt.Sprintf("rank %d: bad ring payload %v", rank, got))
			}
			sums[rank] = collective.AllReduce(p, float64(rank+1), func(a, b float64) float64 { return a + b })
		}
	}
	direct := make([]float64, n)
	directRes, err := runOn(t, dist.New(), n, prog(direct))
	if err != nil {
		t.Fatalf("destination-routed run: %v", err)
	}
	relayed := make([]float64, n)
	relayRes, err := runOn(t, dist.New(dist.WithPeerRouting()), n, prog(relayed))
	if err != nil {
		t.Fatalf("peer-routed run: %v", err)
	}
	for rank := range direct {
		if direct[rank] != relayed[rank] {
			t.Errorf("rank %d: destination-routed %g != peer-routed %g", rank, direct[rank], relayed[rank])
		}
	}
	if directRes.Msgs != relayRes.Msgs || directRes.Bytes != relayRes.Bytes {
		t.Errorf("meters differ: destination-routed %d msgs/%d bytes, peer-routed %d msgs/%d bytes",
			directRes.Msgs, directRes.Bytes, relayRes.Msgs, relayRes.Bytes)
	}
}

// TestDistCrashMidPush kills a worker at the narrowest window of the
// eager-push path: after the message crossed the worker↔worker data
// plane (peer routing) but before its opDeliver push reaches the
// coordinator. The world must fail with a worker error — not hang on the
// never-delivered message, and not masquerade as a cancellation.
func TestDistCrashMidPush(t *testing.T) {
	t.Setenv("ARCHDIST_CRASH_PUSH_RANK", "1") // rank 1's worker dies before its first push
	const n = 4
	done := make(chan error, 1)
	go func() {
		_, err := runOn(t, dist.New(dist.WithPeerRouting()), n, func(p *spmd.Proc) {
			rank := p.Rank()
			spmd.SendT(p, (rank+1)%n, 5, rank)
			spmd.Recv[int](p, (rank+n-1)%n, 5)
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a worker killed mid-push returned nil error")
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("mid-push crash surfaced as cancellation, want a worker failure: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run with a worker killed mid-push hung")
	}
}

// TestDistWorkerPoolReuse pins the pooling contract observably: with
// WithWorkerPool, a second world on the same runner reuses the first
// world's worker processes instead of spawning fresh ones.
func TestDistWorkerPoolReuse(t *testing.T) {
	if _, ok := liveChildren(); !ok {
		t.Skip("kernel does not expose the children listing")
	}
	r := dist.New(dist.WithWorkerPool())
	run := func() {
		if _, err := runOn(t, r, 2, func(p *spmd.Proc) {
			peer := 1 - p.Rank()
			spmd.SendT(p, peer, 1, p.Rank())
			spmd.Recv[int](p, peer, 1)
		}); err != nil {
			t.Fatalf("pooled run: %v", err)
		}
	}
	run()
	first, _ := liveChildren()
	if len(first) != 2 {
		t.Fatalf("after first pooled world: %d live workers, want 2 pooled", len(first))
	}
	run()
	second, _ := liveChildren()
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("second world changed the worker set: %v -> %v, want reuse", first, second)
	}
}

// TestDistSizedPayloads sends an app-style Sized wrapper type through the
// reflection fallback of the wire codec, across real process boundaries.
func TestDistSizedPayloads(t *testing.T) {
	type block struct {
		X0, X1 int
		Data   []float64
	}
	const n = 2
	_, err := runOn(t, dist.New(), n, func(p *spmd.Proc) {
		if p.Rank() == 0 {
			spmd.SendT(p, 1, 11, block{X0: 2, X1: 5, Data: []float64{1.5, 2.5, 3.5}})
			return
		}
		b := spmd.Recv[block](p, 0, 11)
		if b.X0 != 2 || b.X1 != 5 || len(b.Data) != 3 || b.Data[2] != 3.5 {
			panic(fmt.Sprintf("corrupted block %+v", b))
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
