package dist

import "testing"

// TestInQueueOrderBounded pins the token-compaction contract: an inbox
// drained only by targeted pops must not grow its arrival-order slice
// with total traffic — token memory stays proportional to outstanding
// messages, like the in-process mailbox.
func TestInQueueOrderBounded(t *testing.T) {
	q := newInQueue(2)
	const rounds = 100000
	for i := 0; i < rounds; i++ {
		q.push(inMsg{src: 1, tag: i})
		m, ok := q.pop(1)
		if !ok || m.tag != i {
			t.Fatalf("round %d: pop = %+v, %v", i, m, ok)
		}
	}
	if tokens := len(q.order) - q.ohead; tokens > 64 {
		t.Errorf("order slice holds %d tokens after drained targeted pops, want bounded", tokens)
	}
	if cap(q.order) > 4096 {
		t.Errorf("order capacity grew to %d over %d drained messages, want bounded", cap(q.order), rounds)
	}
}

// TestInQueueMixedConsumption checks per-source FIFO under interleaved
// targeted pops and popAny, including stale-token skipping.
func TestInQueueMixedConsumption(t *testing.T) {
	q := newInQueue(3)
	q.push(inMsg{src: 1, tag: 10})
	q.push(inMsg{src: 2, tag: 20})
	q.push(inMsg{src: 1, tag: 11})
	if m, ok := q.pop(1); !ok || m.tag != 10 {
		t.Fatalf("pop(1) = %+v, %v, want tag 10", m, ok)
	}
	// Mixed consumption matches the in-process mailbox's documented
	// approximation: src 1's orphaned head token stands in for its newer
	// message, so popAny yields src 1's second message first; per-pair
	// FIFO holds throughout (tag 11 only ever after tag 10).
	if m, ok := q.popAny(); !ok || m.src != 1 || m.tag != 11 {
		t.Fatalf("popAny = %+v, %v, want src 1 tag 11", m, ok)
	}
	if m, ok := q.popAny(); !ok || m.src != 2 || m.tag != 20 {
		t.Fatalf("popAny = %+v, %v, want src 2 tag 20", m, ok)
	}
	if q.pending != 0 {
		t.Errorf("pending = %d after draining, want 0", q.pending)
	}
}

// TestInQueueCloseUnblocks pins that close releases a blocked consumer
// with ok=false (the worker-abandons-world path).
func TestInQueueCloseUnblocks(t *testing.T) {
	q := newInQueue(1)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.popAny()
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Error("popAny on closed queue returned ok=true")
	}
	if _, ok := q.pop(0); ok {
		t.Error("pop on closed queue returned ok=true")
	}
}
