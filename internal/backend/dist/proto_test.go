package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestProtoRoundTrip pins the frame-body encodings both planes speak.
func TestProtoRoundTrip(t *testing.T) {
	token, addr, pid, err := parseHello(helloBody("tok", "127.0.0.1:9", 42))
	if err != nil || token != "tok" || addr != "127.0.0.1:9" || pid != 42 {
		t.Fatalf("hello round trip = %q %q %d %v", token, addr, pid, err)
	}
	rank, n, secret, addrs, err := parseAssign(assignBody(2, 3, "s3cret", []string{"a", "b", "c"}))
	if err != nil || rank != 2 || n != 3 || secret != "s3cret" || len(addrs) != 3 || addrs[1] != "b" {
		t.Fatalf("assign round trip = %d %d %q %v %v", rank, n, secret, addrs, err)
	}
	from, psec, err := parsePeerHello(peerHelloBody(1, "s3cret"))
	if err != nil || from != 1 || psec != "s3cret" {
		t.Fatalf("peerhello round trip = %d %q %v", from, psec, err)
	}
	r, tag, metered, payload, err := parseMsgHeader(msgHeader(5, -7, 16, []byte{1, 2}))
	if err != nil || r != 5 || tag != -7 || metered != 16 || !bytes.Equal(payload, []byte{1, 2}) {
		t.Fatalf("msg header round trip = %d %d %d %v %v", r, tag, metered, payload, err)
	}
}

// TestWriterCoalescing pins the Writer's framing contract: a lone pending
// frame goes out verbatim, back-to-back frames go out as one opBatch
// container, and forEachFrame expands the container back into the
// original sequence.
func TestWriterCoalescing(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink)

	// Single frame: byte-identical to an uncoalesced WriteFrame.
	if err := w.Write(opSend, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := AppendFrame(nil, opSend, []byte("solo")); !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("single frame = %v, want %v", sink.Bytes(), want)
	}

	// Double flush is a no-op: nothing pending, nothing written.
	n := sink.Len()
	if err := w.Flush(); err != nil || sink.Len() != n {
		t.Fatalf("idle flush wrote %d bytes (err %v)", sink.Len()-n, err)
	}

	// Burst: three frames coalesce into one batch container.
	sink.Reset()
	frames := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for _, f := range frames {
		if err := w.Write(opDeliver, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	op, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(sink.Bytes())))
	if err != nil || op != opBatch {
		t.Fatalf("burst frame op = %d (err %v), want opBatch", op, err)
	}
	var got [][]byte
	err = forEachFrame(op, body, func(op byte, b []byte) error {
		if op != opDeliver {
			t.Errorf("batched op = %d, want opDeliver", op)
		}
		got = append(got, append([]byte(nil), b...))
		return nil
	})
	if err != nil || len(got) != len(frames) {
		t.Fatalf("batch expanded to %d frames (err %v), want %d", len(got), err, len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("batched frame %d = %q, want %q", i, got[i], frames[i])
		}
	}
}

// TestWriterSelfFlush pins the buffer bound: a burst past writerFlushBytes
// flushes inline rather than growing without limit, and the stream stays
// decodable.
func TestWriterSelfFlush(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink)
	payload := make([]byte, 1024)
	const sent = 100 // ~100 KiB total, several self-flushes
	for i := range sent {
		payload[0] = byte(i)
		if err := w.Write(opData, payload); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Len() == 0 {
		t.Fatal("no self-flush: buffer grew past writerFlushBytes")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(sink.Bytes()))
	seen := 0
	for {
		op, body, err := ReadFrame(br)
		if err != nil {
			break
		}
		if err := forEachFrame(op, body, func(op byte, b []byte) error {
			if op != opData || len(b) != len(payload) || b[0] != byte(seen) {
				t.Fatalf("frame %d corrupted: op %d, len %d, lead %d", seen, op, len(b), b[0])
			}
			seen++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if seen != sent {
		t.Fatalf("decoded %d frames, want %d", seen, sent)
	}
}

// TestWriterLatchedError pins fail-fast: after the destination errors,
// every subsequent Write and Flush reports it.
func TestWriterLatchedError(t *testing.T) {
	w := NewWriter(failWriter{})
	if err := w.Write(opSend, []byte("x")); err != nil {
		t.Fatalf("buffered write errored early: %v", err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush to a failing writer returned nil")
	}
	if err := w.Write(opSend, []byte("y")); err == nil {
		t.Fatal("write after latched error returned nil")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failed flush")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("wire down") }

// TestForEachFrameRejectsMalformedBatch pins container hygiene: nested
// batches and truncated sub-frames are errors, not panics or silent
// drops.
func TestForEachFrameRejectsMalformedBatch(t *testing.T) {
	nop := func(byte, []byte) error { return nil }
	inner := AppendFrame(nil, opBatch, AppendFrame(nil, opData, []byte("x")))
	if err := forEachFrame(opBatch, inner, nop); err == nil {
		t.Error("nested batch accepted")
	}
	truncated := AppendFrame(nil, opData, []byte("payload"))
	if err := forEachFrame(opBatch, truncated[:len(truncated)-3], nop); err == nil {
		t.Error("truncated batch accepted")
	}
	if err := forEachFrame(opBatch, []byte{0, 0, 0, 0}, nop); err == nil {
		t.Error("zero-length batched frame accepted")
	}
}

// TestPendingFrame pins the flush-on-idle predicate: true exactly when a
// complete frame is already buffered.
func TestPendingFrame(t *testing.T) {
	full := AppendFrame(nil, opData, []byte("hello"))
	br := bufio.NewReader(bytes.NewReader(append(full, full[:7]...)))
	if pendingFrame(br) {
		t.Error("pendingFrame true before any buffered read")
	}
	if _, err := br.Peek(1); err != nil { // prime the buffer
		t.Fatal(err)
	}
	if !pendingFrame(br) {
		t.Error("pendingFrame false with a complete frame buffered")
	}
	if _, _, err := ReadFrame(br); err != nil {
		t.Fatal(err)
	}
	if pendingFrame(br) {
		t.Error("pendingFrame true with only a partial frame left")
	}
}

// TestProtoMalformedFrames pins that forged or corrupt frames surface as
// errors, never panics: the coordinator's control listener parses hello
// frames from arbitrary connections.
func TestProtoMalformedFrames(t *testing.T) {
	// A string whose uvarint length is astronomically larger than the
	// body: the overflow-bait case.
	huge := binary.AppendUvarint(nil, 1<<62)
	if _, _, _, err := parseHello(huge); err == nil {
		t.Error("parseHello(huge length): want error")
	}
	if _, _, _, _, err := parseAssign(append(binary.BigEndian.AppendUint32(binary.BigEndian.AppendUint32(nil, 0), 2), huge...)); err == nil {
		t.Error("parseAssign(huge length): want error")
	}
	if _, _, err := parsePeerHello(append(binary.BigEndian.AppendUint32(nil, 1), huge...)); err == nil {
		t.Error("parsePeerHello(huge length): want error")
	}
	for _, b := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, _, _, err := parseHello(b); err == nil {
			t.Errorf("parseHello(%v): want error", b)
		}
		if _, _, _, _, err := parseMsgHeader(b); err == nil {
			t.Errorf("parseMsgHeader(%v): want error", b)
		}
	}
	// Zero and oversized frame lengths are rejected before allocation.
	for _, hdr := range [][]byte{
		{0, 0, 0, 0, 0},
		{0xFF, 0xFF, 0xFF, 0xFF, 0},
	} {
		if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
			t.Errorf("ReadFrame(length %v): want error", hdr[:4])
		}
	}
}
