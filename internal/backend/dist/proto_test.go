package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// TestProtoRoundTrip pins the frame-body encodings both planes speak.
func TestProtoRoundTrip(t *testing.T) {
	token, addr, pid, err := parseHello(helloBody("tok", "127.0.0.1:9", 42))
	if err != nil || token != "tok" || addr != "127.0.0.1:9" || pid != 42 {
		t.Fatalf("hello round trip = %q %q %d %v", token, addr, pid, err)
	}
	rank, n, secret, addrs, err := parseAssign(assignBody(2, 3, "s3cret", []string{"a", "b", "c"}))
	if err != nil || rank != 2 || n != 3 || secret != "s3cret" || len(addrs) != 3 || addrs[1] != "b" {
		t.Fatalf("assign round trip = %d %d %q %v %v", rank, n, secret, addrs, err)
	}
	from, psec, err := parsePeerHello(peerHelloBody(1, "s3cret"))
	if err != nil || from != 1 || psec != "s3cret" {
		t.Fatalf("peerhello round trip = %d %q %v", from, psec, err)
	}
	r, tag, metered, payload, err := parseMsgHeader(msgHeader(5, -7, 16, []byte{1, 2}))
	if err != nil || r != 5 || tag != -7 || metered != 16 || !bytes.Equal(payload, []byte{1, 2}) {
		t.Fatalf("msg header round trip = %d %d %d %v %v", r, tag, metered, payload, err)
	}
}

// TestProtoMalformedFrames pins that forged or corrupt frames surface as
// errors, never panics: the coordinator's control listener parses hello
// frames from arbitrary connections.
func TestProtoMalformedFrames(t *testing.T) {
	// A string whose uvarint length is astronomically larger than the
	// body: the overflow-bait case.
	huge := binary.AppendUvarint(nil, 1<<62)
	if _, _, _, err := parseHello(huge); err == nil {
		t.Error("parseHello(huge length): want error")
	}
	if _, _, _, _, err := parseAssign(append(binary.BigEndian.AppendUint32(binary.BigEndian.AppendUint32(nil, 0), 2), huge...)); err == nil {
		t.Error("parseAssign(huge length): want error")
	}
	if _, _, err := parsePeerHello(append(binary.BigEndian.AppendUint32(nil, 1), huge...)); err == nil {
		t.Error("parsePeerHello(huge length): want error")
	}
	for _, b := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, _, _, err := parseHello(b); err == nil {
			t.Errorf("parseHello(%v): want error", b)
		}
		if _, _, _, _, err := parseMsgHeader(b); err == nil {
			t.Errorf("parseMsgHeader(%v): want error", b)
		}
	}
	// Zero and oversized frame lengths are rejected before allocation.
	for _, hdr := range [][]byte{
		{0, 0, 0, 0, 0},
		{0xFF, 0xFF, 0xFF, 0xFF, 0},
	} {
		if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
			t.Errorf("ReadFrame(length %v): want error", hdr[:4])
		}
	}
}
