// Package backend provides pluggable execution substrates for SPMD
// archetype programs.
//
// The paper's method promises that one program text runs unchanged across
// execution strategies: sequentially for debugging, on a simulated
// multicomputer for cost studies, and on a real machine at hardware speed.
// This package is the seam that makes the last part true. A Transport is
// the per-run substrate extracted from the simulator's World — it carries
// tagged FIFO messages between ranks and owns the notion of time — and a
// Runner is a named Transport factory, one per execution backend.
//
// Two backends are built into this package:
//
//   - Sim: the original virtual-time simulator. Every process carries a
//     virtual clock advanced by compute charges and machine.Model message
//     costs; makespans are deterministic for deterministic programs.
//   - Real: shared-memory execution. Processes are goroutines exchanging
//     data through native channels with no virtual pricing; the makespan
//     is wall-clock time read from an injectable clock. Messages and
//     bytes are still counted identically to Sim, so cost accounting is
//     comparable across backends.
//
// A third backend lives in the backend/dist sub-package and registers
// itself as "dist": the same Transport operations routed across worker
// OS processes over TCP (wall-clock metering, identical msg/byte counts).
//
// Programs keep their communication structure and computational results on
// every backend; only the meaning of time (and, for dist, the address
// space messages cross) changes. spmd.World runs on any Transport (see
// spmd.NewWorldOn), and internal/sched sweeps experiment matrices over
// backends concurrently.
package backend

import (
	"context"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Result summarizes one run of an n-process program on a Transport.
type Result struct {
	// Makespan is the run's execution time in seconds: the maximum final
	// virtual clock (Sim) or elapsed wall-clock time (Real).
	Makespan float64
	// Clocks holds every process's final clock reading.
	Clocks []float64
	// Msgs and Bytes count all point-to-point messages sent, self-sends
	// excluded. Both backends count identically.
	Msgs  int64
	Bytes int64
}

// Transport is one run's execution substrate: the send/recv/clock-charge
// operations extracted from the simulator's World. A Transport serves
// exactly one run of an n-process program; rank-indexed methods are only
// called from the goroutine running that rank, while distinct ranks call
// concurrently. In particular, Send(src, ...) runs on src's goroutine and
// Recv/RecvAny(..., dst, ...) on dst's — the built-in fabric shards its
// message accounting per sender and its delivery per destination on the
// strength of that contract.
type Transport interface {
	// Charge accounts sec seconds of modeled computation on rank
	// (non-negative; the caller validates). Virtual-time backends advance
	// the rank's clock, subject to the paging model; wall-clock backends
	// discard the charge because real computation takes real time.
	Charge(rank int, sec float64)
	// SetResident declares rank's resident data size in bytes for the
	// paging model (see machine.Model.MemPerProc).
	SetResident(rank int, bytes float64)
	// Clock returns rank's current time in seconds.
	Clock(rank int) float64
	// Idle advances rank's clock to at least t (no-op when time is not
	// advanceable, i.e. wall-clock backends).
	Idle(rank int, t float64)
	// Send transmits (tag, data, bytes) from src to dst over the per-pair
	// FIFO, pricing it according to the backend's notion of time.
	Send(src, dst, tag int, data any, bytes int)
	// Recv returns the next message from src at dst. The message must
	// carry the given tag: tags are order checks over the per-pair FIFO,
	// and a mismatch panics because the program's protocol is broken.
	Recv(src, dst, tag int) any
	// RecvAny returns the next message carrying tag from any source,
	// along with the sender's rank. The choice among concurrently
	// available messages depends on host scheduling.
	RecvAny(dst, tag int) (int, any)
	// Finish assembles the run summary after every process has returned.
	// It may release the transport's internal fabric for reuse by later
	// runs: the transport is dead afterwards, and no method (including
	// Finish itself) may be called on it again.
	Finish() Result
}

// Driver is an optional Transport capability: a transport that owns rank
// scheduling. When a transport implements Driver, spmd.World.Run hands it
// a run function instead of spawning one goroutine per rank itself, and
// the transport decides when — and how many times — each rank's body
// executes. This is the seam elastic (fault-tolerant) backends need:
// re-executing a rank after its host worker dies only works if the
// substrate, not the world, owns the rank's goroutine.
//
// Drive must call run(rank) at least once for every rank in [0, n) (ranks
// may run concurrently; each call runs the full rank body) and return
// after all rank executions it started have returned. run reports the
// rank body's outcome: nil on normal completion, the sentinel error for a
// panic carrying Canceled (how transports signal their own control flow,
// e.g. "this attempt's host died, reschedule me"), or a wrapped panic
// otherwise. Drive's returned error becomes the run's error; returning
// nil means every rank completed exactly once from the program's point of
// view. The world still calls Finish afterwards on every path.
type Driver interface {
	Drive(run func(rank int) error) error
}

// RankObserver is an optional Transport capability: RankReturned(rank) is
// called by spmd.World.Run on the rank's own goroutine the moment that
// rank's body returns (normally or by panic), before the world joins the
// remaining ranks. Transports with buffered write paths use it as the
// final flush point for work the rank left pending — a rank whose body
// ends with a send and never blocks in the transport again still gets its
// bytes on the wire while its peers are running. Implementations must
// tolerate concurrent calls for different ranks and must not block on
// other ranks' progress.
type RankObserver interface {
	RankReturned(rank int)
}

// Traced is an optional Transport capability: a transport created under
// a context carrying an obs.Collector (see obs.RunRecorder) exposes the
// run's flight recorder so spmd.World can stamp world-level events onto
// the same trace and hand the recorder back with the run's Result.
// Recorder returns nil when tracing is off for this run — callers must
// treat a nil recorder as "disabled", which obs makes free.
type Traced interface {
	Recorder() *obs.Recorder
}

// Runner is a named Transport factory: one Runner per execution backend.
// Runners are stateless and safe for concurrent use; each NewTransport
// call yields an independent run substrate.
type Runner interface {
	// Name identifies the backend ("sim", "real") in flags, scheduler
	// cache keys, and reports.
	Name() string
	// Virtual reports whether the backend's time is virtual (compute
	// charges advance per-rank clocks; runs are deterministic and can be
	// co-scheduled freely) or wall-clock (runs are measurements and must
	// not share the host's cores with competing cells).
	Virtual() bool
	// NewTransport builds the substrate for one run of an n-process
	// program priced by (or, for wall-clock backends, merely annotated
	// with) the given machine model. Cancelling ctx aborts the run:
	// blocked (and subsequently attempted) transport operations raise the
	// cancellation sentinel (see AsCanceled), which spmd.World.Run turns
	// into the context's error.
	NewTransport(ctx context.Context, n int, m *machine.Model) Transport
}

// canceled is the panic value mailbox operations raise when the run's
// context is cancelled while a process is blocked in (or enters) a
// transport operation. It unwinds the process goroutine; spmd.World.Run
// recovers it and reports ctx.Err() instead of a process panic.
type canceled struct{ err error }

// AsCanceled reports whether a recovered panic value is the cancellation
// sentinel raised by a transport operation, and returns the originating
// context error when it is.
func AsCanceled(r any) (error, bool) {
	if c, ok := r.(canceled); ok {
		return c.err, true
	}
	return nil, false
}

// Canceled returns the sentinel panic value carrying err, for Transport
// implementations outside this package (backend/dist): panicking with
// Canceled(err) from a transport operation unwinds the process goroutine
// and makes spmd.World.Run report err instead of a process panic. Besides
// context cancellation, transports use it for substrate failures a
// process cannot recover from — a lost worker connection fails the run as
// an error, not a hang or a panic.
func Canceled(err error) any { return canceled{err} }

var (
	registryMu sync.RWMutex
	registry   = map[string]Runner{}
)

// Register makes a Runner available to ByName. It panics on a duplicate
// name: backends are identities, not overridable configuration.
func Register(r Runner) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[r.Name()]; dup {
		panic("backend: duplicate runner " + r.Name())
	}
	registry[r.Name()] = r
}

// ByName looks up a registered backend ("sim", "real").
func ByName(name string) (Runner, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	r, ok := registry[name]
	return r, ok
}

// Names returns all registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default returns the backend programs run on when none is chosen
// explicitly: the virtual-time simulator.
func Default() Runner { return Sim() }
