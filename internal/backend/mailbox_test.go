package backend

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestPopAnyArrivalOrder: popAny serves strictly in arrival order across
// sources — the fabric's fairness guarantee — while preserving each
// pair's FIFO. Pushes and pops run on one goroutine, so the expected
// order is exact, not a smoke check.
func TestPopAnyArrivalOrder(t *testing.T) {
	mb := newMailbox(context.Background(), 4)
	arrivals := []struct{ src, val int }{
		{2, 10}, {0, 20}, {2, 11}, {1, 30}, {0, 21}, {3, 40},
	}
	for _, a := range arrivals {
		mb.push(a.src, 0, message{tag: 7, data: a.val})
	}
	for i, want := range arrivals {
		src, msg := mb.popAny(0, 7)
		if src != want.src || msg.data.(int) != want.val {
			t.Fatalf("popAny %d = (src %d, %v), want (src %d, %d)", i, src, msg.data, want.src, want.val)
		}
	}
}

// TestPopAnySkipsStaleTokens: a targeted pop consumes a message but not
// its arrival token; popAny must skip the leftover token rather than
// deliver a phantom or double-deliver.
func TestPopAnySkipsStaleTokens(t *testing.T) {
	mb := newMailbox(context.Background(), 3)
	mb.push(1, 0, message{tag: 1, data: "a1"}) // token for 1
	mb.push(2, 0, message{tag: 1, data: "b1"}) // token for 2
	mb.push(1, 0, message{tag: 1, data: "a2"}) // token for 1
	if got := mb.pop(1, 0, 1); got.data != "a1" {
		t.Fatalf("pop(1) = %v, want a1", got.data)
	}
	// Token order is now [1 (stale for a1), 2, 1]; the first token's
	// queue still has a2 queued, so arrival order delivers a2 then b1.
	src, msg := mb.popAny(0, 1)
	if src != 1 || msg.data != "a2" {
		t.Fatalf("popAny = (src %d, %v), want (1, a2)", src, msg.data)
	}
	src, msg = mb.popAny(0, 1)
	if src != 2 || msg.data != "b1" {
		t.Fatalf("popAny = (src %d, %v), want (2, b1)", src, msg.data)
	}
}

// TestPairFIFOThroughRingGrowth: per-pair order survives ring-buffer
// growth (more messages than the initial ring capacity).
func TestPairFIFOThroughRingGrowth(t *testing.T) {
	mb := newMailbox(context.Background(), 2)
	const n = 100 // well past the initial ring size of 8
	for i := 0; i < n; i++ {
		mb.push(1, 0, message{tag: 3, data: i})
	}
	for i := 0; i < n; i++ {
		if got := mb.pop(1, 0, 3); got.data.(int) != i {
			t.Fatalf("pop %d = %v, want %d", i, got.data, i)
		}
	}
}

// TestTokenRingBoundedByOutstanding: an inbox drained only by targeted
// pops must not accumulate arrival tokens proportional to total traffic
// — stale tokens are compacted away, so the ring tracks the outstanding
// message count (here, 1) no matter how many messages flow.
func TestTokenRingBoundedByOutstanding(t *testing.T) {
	mb := newMailbox(context.Background(), 2)
	for i := 0; i < 10000; i++ {
		mb.push(1, 0, message{tag: 3, data: i})
		if got := mb.pop(1, 0, 3); got.data.(int) != i {
			t.Fatalf("pop %d = %v", i, got.data)
		}
	}
	ib := &mb.f.inboxes[0]
	if len(ib.order) > 8 {
		t.Fatalf("token ring grew to %d entries for a Recv-only workload with 1 outstanding message", len(ib.order))
	}
}

// TestPopAnyCancellationSentinel is the regression test for the old
// popAny's impossible branch (a plain-string panic on a closed channel):
// cancellation must be the only way a blocked popAny unwinds, and it must
// unwind with the canceled sentinel that AsCanceled recognizes, not a
// plain panic.
func TestPopAnyCancellationSentinel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	mb := newMailbox(ctx, 2)
	unwound := make(chan any, 1)
	go func() {
		defer func() { unwound <- recover() }()
		mb.popAny(0, 1) // nothing will ever arrive
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case r := <-unwound:
		err, ok := AsCanceled(r)
		if !ok {
			t.Fatalf("popAny unwound with %v, want the canceled sentinel", r)
		}
		if err != context.Canceled {
			t.Fatalf("sentinel carries %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked popAny did not unwind on cancellation")
	}
}

// TestPopTagMismatchMentionsRanks: the protocol panic stays descriptive.
func TestPopTagMismatchMentionsRanks(t *testing.T) {
	mb := newMailbox(context.Background(), 2)
	mb.push(1, 0, message{tag: 5})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("tag mismatch did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "expected tag 6") {
			t.Fatalf("panic = %v, want a tag-mismatch message", r)
		}
	}()
	mb.pop(1, 0, 6)
}

// TestShardedCountsAggregate: per-sender shards sum to the run totals.
func TestShardedCountsAggregate(t *testing.T) {
	mb := newMailbox(context.Background(), 4)
	mb.count(0, 10)
	mb.count(3, 5)
	mb.count(3, 7)
	msgs, bytes := mb.totals()
	if msgs != 3 || bytes != 22 {
		t.Fatalf("totals = %d msgs %d bytes, want 3/22", msgs, bytes)
	}
}

// TestFabricResetClearsState: a pooled fabric carries no messages,
// counters, or tokens from its previous run, and drops payload
// references so the pool cannot pin application data.
func TestFabricResetClearsState(t *testing.T) {
	f := newFabric(2)
	mb := &mailbox{n: 2, f: f}
	payload := make([]byte, 1024)
	mb.push(0, 1, message{tag: 1, data: payload})
	mb.push(1, 0, message{tag: 2, data: "x"})
	mb.count(0, 99)
	f.reset()
	for d := range f.inboxes {
		ib := &f.inboxes[d]
		if ib.pending != 0 || ib.olen != 0 {
			t.Fatalf("inbox %d not reset: pending %d, tokens %d", d, ib.pending, ib.olen)
		}
		for s := range ib.q {
			if ib.q[s].n != 0 {
				t.Fatalf("queue %d->%d not reset", s, d)
			}
			for i := range ib.q[s].buf {
				if ib.q[s].buf[i].data != nil {
					t.Fatalf("queue %d->%d ring still references payload %v", s, d, ib.q[s].buf[i].data)
				}
			}
		}
	}
	if msgs, bytes := mb.totals(); msgs != 0 || bytes != 0 {
		t.Fatalf("counters survived reset: %d msgs %d bytes", msgs, bytes)
	}
}
