package backend_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/onedeep"
	"repro/internal/poisson"
	"repro/internal/sortapp"
	"repro/internal/spmd"

	"repro/internal/fft"
)

// TestBackendParity is the reproduction's cross-backend contract: the
// same deterministic archetype program, run on the virtual-time
// simulator, on the real shared-memory backend, on the distributed
// backend (self-spawned localhost worker processes over TCP), and on the
// elastic fault-tolerant backend (ranks as leased tasks over loopback
// TCP), must produce bit-identical computational results and identical
// message/byte counts at every process count. Only the meaning of time —
// and, for dist and elastic, the address space the messages cross —
// differs between backends.
func TestBackendParity(t *testing.T) {
	model := machine.IBMSP()
	// Each case returns a comparable snapshot of the computation's output;
	// the program must be deterministic (no RecvAny, no clock-dependent
	// control flow).
	cases := []struct {
		name string
		prog func(np int) (core.Program, func() any)
	}{
		{
			name: "sorting/one-deep-mergesort",
			prog: func(np int) (core.Program, func() any) {
				data := sortapp.RandomInts(20000, 42)
				blocks := sortapp.BlockDistribute(data, np)
				spec := sortapp.OneDeepMergesort(onedeep.Centralized)
				outs := make([][]int32, np)
				return func(p *spmd.Proc) {
					outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
				}, func() any { return outs }
			},
		},
		{
			name: "fft/2d-forward",
			prog: func(np int) (core.Program, func() any) {
				const n = 32
				var out []complex128
				return func(p *spmd.Proc) {
					g := meshspectral.New2D[complex128](p, n, n, meshspectral.Rows(p.N()), 0)
					g.Fill(func(i, j int) complex128 {
						return complex(math.Sin(float64(i)*0.11), math.Cos(float64(j)*0.23))
					})
					f := fft.TwoDSPMD(p, g, false)
					full := meshspectral.GatherGrid(f, 0)
					if p.Rank() == 0 {
						out = full.Data
					}
				}, func() any { return out }
			},
		},
		{
			name: "poisson/jacobi",
			prog: func(np int) (core.Program, func() any) {
				pr := poisson.Manufactured(25, 25, 1e-6, 2000)
				var grid []float64
				var iters int
				return func(p *spmd.Proc) {
						g, r := poisson.SolveSPMD(p, pr, meshspectral.NearSquare(p.N()))
						full := meshspectral.GatherGrid(g, 0)
						if p.Rank() == 0 {
							grid = full.Data
							iters = r.Iterations
						}
					}, func() any {
						return struct {
							Grid  []float64
							Iters int
						}{grid, iters}
					}
			},
		},
	}

	// Elastic runs its workers as in-process goroutines here (the kill
	// recovery suite covers the process-spawn path) so the table stays
	// fast; the parity it proves is identical either way.
	backends := []backend.Runner{backend.Sim(), backend.Real(), dist.New(), elastic.New(elastic.WithLocalWorkers(true))}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, np := range []int{1, 2, 4} {
				simProg, simSnap := tc.prog(np)
				simRes, err := core.Run(context.Background(), backends[0], np, model, simProg)
				if err != nil {
					t.Fatalf("P=%d sim: %v", np, err)
				}
				if simRes.Makespan <= 0 {
					t.Fatalf("P=%d: sim makespan %g, want positive virtual time", np, simRes.Makespan)
				}
				want := simSnap()
				for _, b := range backends[1:] {
					prog, snap := tc.prog(np)
					res, err := core.Run(context.Background(), b, np, model, prog)
					if err != nil {
						t.Fatalf("P=%d %s: %v", np, b.Name(), err)
					}
					if !reflect.DeepEqual(want, snap()) {
						t.Fatalf("P=%d: %s results differ from sim", np, b.Name())
					}
					if simRes.Msgs != res.Msgs || simRes.Bytes != res.Bytes {
						t.Fatalf("P=%d: communication volume differs: sim %d msgs/%d bytes, %s %d msgs/%d bytes",
							np, simRes.Msgs, simRes.Bytes, b.Name(), res.Msgs, res.Bytes)
					}
				}
			}
		})
	}
}
