package backend_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func testModel() *machine.Model {
	return &machine.Model{
		Name: "test", FlopTime: 1e-9, CmpTime: 1e-9, MemTime: 1e-9,
		Latency: 10e-6, Bandwidth: 1e6, SendOverhead: 1e-6, RecvOverhead: 1e-6,
	}
}

func TestRegistryHasBuiltins(t *testing.T) {
	for _, name := range []string{"sim", "real"} {
		r, ok := backend.ByName(name)
		if !ok {
			t.Fatalf("backend %q not registered", name)
		}
		if r.Name() != name {
			t.Fatalf("backend %q reports name %q", name, r.Name())
		}
	}
	if _, ok := backend.ByName("quantum"); ok {
		t.Fatal("unknown backend resolved")
	}
	names := backend.Names()
	if len(names) < 2 {
		t.Fatalf("Names() = %v, want at least sim and real", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering sim should panic")
		}
	}()
	backend.Register(backend.Sim())
}

// TestRealWallClockMetering injects a fake clock and checks the makespan
// is exactly the clock delta between Run starting (the transport is
// created when the run starts, not when the world is built) and Finish.
func TestRealWallClockMetering(t *testing.T) {
	var now atomic.Value
	now.Store(10.0)
	r := backend.RealWithClock(func() float64 { return now.Load().(float64) })
	w := spmd.MustWorldOn(r, 2, testModel())
	res, err := w.Run(func(p *spmd.Proc) {
		if got := p.Clock(); got != 0 {
			t.Errorf("run-start clock = %g, want 0 (the clock starts with the run)", got)
		}
		p.Charge(1e9) // discarded: real computation takes real time
		p.Idle(1e12)  // no-op: a wall clock cannot be advanced
		// Barrier so the clock step below happens after every process's
		// zero-clock check, keeping the test deterministic.
		peer := 1 - p.Rank()
		p.Send(peer, 1, nil)
		p.Recv(peer, 1)
		if p.Rank() == 0 {
			now.Store(13.5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3.5) > 1e-12 {
		t.Errorf("makespan = %g, want 3.5 (charges and idles discarded)", res.Makespan)
	}
	for i, c := range res.Clocks {
		if math.Abs(c-3.5) > 1e-12 {
			t.Errorf("clock %d = %g, want 3.5", i, c)
		}
	}
}

// TestRealCountsLikeSim: the real backend must count messages and bytes
// exactly as the simulator does — cross-process sends counted, self-sends
// not — so communication volume is comparable across backends.
func TestRealCountsLikeSim(t *testing.T) {
	prog := func(p *spmd.Proc) {
		p.Send(p.Rank(), 3, "self") // self-send: a copy, not a message
		if v := spmd.Recv[string](p, p.Rank(), 3); v != "self" {
			panic("self payload corrupted")
		}
		next := (p.Rank() + 1) % p.N()
		prev := (p.Rank() - 1 + p.N()) % p.N()
		p.Send(next, 4, p.Rank())
		spmd.Recv[int](p, prev, 4)
	}
	simRes, err := spmd.MustWorldOn(backend.Sim(), 4, testModel()).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	realRes, err := spmd.MustWorldOn(backend.Real(), 4, testModel()).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Msgs != 4 || simRes.Bytes != 32 {
		t.Fatalf("sim counted %d msgs %d bytes, want 4/32 (BytesOf prices an int at 8)", simRes.Msgs, simRes.Bytes)
	}
	if realRes.Msgs != simRes.Msgs || realRes.Bytes != simRes.Bytes {
		t.Fatalf("real counted %d msgs %d bytes, sim counted %d/%d",
			realRes.Msgs, realRes.Bytes, simRes.Msgs, simRes.Bytes)
	}
}

// TestRealTagMismatchPanics: protocol checks hold on every backend.
func TestRealTagMismatchPanics(t *testing.T) {
	w := spmd.MustWorldOn(backend.Real(), 2, testModel())
	_, err := w.Run(func(p *spmd.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, nil)
		} else {
			p.Recv(0, 6)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "tag") {
		t.Fatalf("want tag mismatch error, got %v", err)
	}
}

// TestRealRecvAny: the nondeterministic receive works over native
// channels too.
func TestRealRecvAny(t *testing.T) {
	const n = 4
	var sum int64
	w := spmd.MustWorldOn(backend.Real(), n, testModel())
	_, err := w.Run(func(p *spmd.Proc) {
		if p.Rank() == 0 {
			for i := 1; i < n; i++ {
				src, v := p.RecvAny(9)
				if src != v.(int) {
					panic("sender mismatch")
				}
				atomic.AddInt64(&sum, int64(v.(int)))
			}
		} else {
			p.Send(0, 9, p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 1+2+3 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

// TestRecvAnyPerPairFIFO: with many concurrent senders racing into one
// inbox, RecvAny may interleave sources arbitrarily but must preserve
// each (src, dst) pair's FIFO order. Run under -race in CI, on both
// backends.
func TestRecvAnyPerPairFIFO(t *testing.T) {
	const n, per = 5, 200
	for _, name := range []string{"sim", "real"} {
		r, _ := backend.ByName(name)
		seen := make([]int, n)
		counts := make([]int, n)
		w := spmd.MustWorldOn(r, n, testModel())
		_, err := w.Run(func(p *spmd.Proc) {
			if p.Rank() == 0 {
				for i := 0; i < (n-1)*per; i++ {
					src, v := p.RecvAny(2)
					if got := v.(int); got != seen[src] {
						panic("pair FIFO violated")
					}
					seen[src]++
					counts[src]++
				}
			} else {
				for i := 0; i < per; i++ {
					p.Send(0, 2, i)
				}
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for src := 1; src < n; src++ {
			if counts[src] != per {
				t.Fatalf("%s: source %d delivered %d messages, want %d", name, src, counts[src], per)
			}
		}
	}
}

// TestRecvAnyCancellation is the regression test for the mailbox's old
// impossible-branch handling: a process blocked in RecvAny must unwind
// through the cancellation sentinel — surfacing as the context's error,
// never as a process panic — on both backends.
func TestRecvAnyCancellation(t *testing.T) {
	for _, name := range []string{"sim", "real"} {
		r, _ := backend.ByName(name)
		ctx, cancel := context.WithCancel(context.Background())
		w, err := spmd.NewWorldOn(ctx, r, 3, testModel())
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		_, err = w.Run(func(p *spmd.Proc) {
			if p.Rank() == 0 {
				p.RecvAny(1) // no one ever sends
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Run = %v, want context.Canceled", name, err)
		}
	}
}

// TestSimViaRunnerMatchesNewWorld: NewWorldOn(Sim) is byte-for-byte the
// old NewWorld.
func TestSimViaRunnerMatchesNewWorld(t *testing.T) {
	prog := func(p *spmd.Proc) {
		p.Flops(1000)
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{1, 2, 3})
		} else if p.Rank() == 1 {
			p.Recv(0, 1)
		}
	}
	a, err := spmd.MustWorld(2, testModel()).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spmd.MustWorldOn(backend.Sim(), 2, testModel()).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Msgs != b.Msgs || a.Bytes != b.Bytes {
		t.Fatalf("sim-by-name differs: %+v vs %+v", a, b)
	}
}
