package backend

import (
	"context"
	"fmt"
	"reflect"
	"sync"
)

// pairBuffer is the per-(src,dst) channel capacity. Archetype communication
// patterns (collectives, boundary exchange, all-to-all) keep at most a
// handful of outstanding messages per ordered pair; the buffer merely lets
// everyone complete a send phase before the matching receive phase begins.
const pairBuffer = 32

type message struct {
	tag   int
	data  any
	bytes int
	// avail is the virtual time at which the message is available at the
	// receiver. Wall-clock transports leave it zero.
	avail float64
}

// mailbox is the rank-to-rank FIFO fabric and message/byte accounting
// shared by every transport: backends differ in how they price messages,
// not in how they carry them.
type mailbox struct {
	n int
	// mail[src*n+dst] is the FIFO channel from src to dst.
	mail []chan message
	// done is the run context's cancellation channel; nil when the context
	// can never be cancelled, which keeps the hot path a plain channel op.
	done <-chan struct{}
	// cause reads the run context's error once done is closed.
	cause func() error

	mu         sync.Mutex
	totalMsgs  int64
	totalBytes int64
}

func newMailbox(ctx context.Context, n int) *mailbox {
	mb := &mailbox{n: n, mail: make([]chan message, n*n), done: ctx.Done(), cause: ctx.Err}
	for i := range mb.mail {
		mb.mail[i] = make(chan message, pairBuffer)
	}
	return mb
}

// count records one cross-process message of the given size.
func (mb *mailbox) count(bytes int) {
	mb.mu.Lock()
	mb.totalMsgs++
	mb.totalBytes += int64(bytes)
	mb.mu.Unlock()
}

// totals returns the accumulated message and byte counts.
func (mb *mailbox) totals() (msgs, bytes int64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.totalMsgs, mb.totalBytes
}

// push enqueues a message on the src→dst FIFO. A cancelled run context
// raises the cancellation sentinel instead of blocking on a full FIFO.
func (mb *mailbox) push(src, dst int, m message) {
	if mb.done == nil {
		mb.mail[src*mb.n+dst] <- m
		return
	}
	select {
	case mb.mail[src*mb.n+dst] <- m:
	case <-mb.done:
		panic(canceled{mb.cause()})
	}
}

// pop dequeues the next message on the src→dst FIFO, panicking when its
// tag differs from the expected one (a broken communication protocol). A
// cancelled run context raises the cancellation sentinel instead of
// waiting forever for a sender that will never come.
func (mb *mailbox) pop(src, dst, tag int) message {
	var msg message
	if mb.done == nil {
		msg = <-mb.mail[src*mb.n+dst]
	} else {
		select {
		case msg = <-mb.mail[src*mb.n+dst]:
		case <-mb.done:
			panic(canceled{mb.cause()})
		}
	}
	if msg.tag != tag {
		panic(fmt.Sprintf("backend: process %d expected tag %d from %d, got %d", dst, tag, src, msg.tag))
	}
	return msg
}

// popAny dequeues the next message for dst from any source, returning the
// sender's rank. The choice among concurrently available messages depends
// on host scheduling.
func (mb *mailbox) popAny(dst, tag int) (int, message) {
	cases := make([]reflect.SelectCase, mb.n, mb.n+1)
	for src := 0; src < mb.n; src++ {
		cases[src] = reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(mb.mail[src*mb.n+dst]),
		}
	}
	if mb.done != nil {
		cases = append(cases, reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(mb.done),
		})
	}
	chosen, val, ok := reflect.Select(cases)
	if chosen == mb.n {
		panic(canceled{mb.cause()})
	}
	if !ok {
		panic("backend: mailbox closed") // cannot happen: mailboxes are never closed
	}
	msg := val.Interface().(message)
	if msg.tag != tag {
		panic(fmt.Sprintf("backend: process %d expected tag %d from any source, got %d from %d",
			dst, tag, msg.tag, chosen))
	}
	return chosen, msg
}
