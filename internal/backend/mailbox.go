package backend

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one unit in flight on the fabric. Messages are stored by
// value inside per-pair ring buffers, so steady-state sends allocate
// nothing beyond the payload the program itself created.
type message struct {
	tag   int
	data  any
	bytes int
	// avail is the virtual time at which the message is available at the
	// receiver. Wall-clock transports leave it zero.
	avail float64
}

// pairQueue is the FIFO from one source rank to one destination: a
// power-of-two ring buffer grown on demand. Queues start empty and
// unallocated, so a P-process world costs O(P²) queue headers but only
// pairs that actually communicate ever allocate storage — worlds are no
// longer dominated by up-front channel construction.
type pairQueue struct {
	buf  []message // power-of-two ring; nil until first push
	head int
	n    int
}

func (q *pairQueue) push(m message) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
	q.n++
}

func (q *pairQueue) grow() {
	nbuf := make([]message, max(8, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		nbuf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nbuf
	q.head = 0
}

func (q *pairQueue) pop() message {
	m := q.buf[q.head]
	q.buf[q.head] = message{} // drop the payload reference for the GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return m
}

// inbox is one destination rank's mailbox: per-source FIFO queues plus an
// arrival-order ring of source tokens. Exactly one goroutine (the rank's
// own) consumes from an inbox, while any rank may push into it, so a
// single mutex+cond per destination serializes only that destination's
// traffic — there is no global lock anywhere on the message path.
type inbox struct {
	mu   sync.Mutex
	cond sync.Cond
	// q[src] is the FIFO from src to this rank.
	q []pairQueue
	// pending counts queued messages across all sources.
	pending int
	// waiting is true while the consumer sits in cond.Wait, so senders
	// skip the Signal entirely in the common nobody-is-blocked case.
	waiting bool
	// order is a ring of source tokens in arrival order: popAny serves
	// first-come-first-served across sources, which is both O(1) and
	// fair, as long as the inbox is consumed by popAny alone. pop(src)
	// consumes messages without consuming tokens; stale[src] counts the
	// orphaned tokens (always the oldest of their source, since pop takes
	// the oldest message), and the ring is compacted once stale tokens
	// outnumber live ones, so token memory is bounded by outstanding
	// messages — not by the run's total traffic — even for inboxes only
	// ever drained by targeted pops. The invariant stale[src] ==
	// tokens(src) − queued(src) means a token for a non-empty queue
	// always exists while pending > 0, and a token found with an empty
	// queue is always accounted stale. After a targeted pop, an excess
	// token can stand in for a newer message from its source, so mixed
	// pop/popAny consumption keeps per-pair FIFO but only approximates
	// cross-source arrival order.
	order      []int32
	ohead      int
	olen       int
	stale      []int32 // lazily allocated on the first targeted pop
	staleTotal int
}

// noteStale records that src's oldest token lost its message to a
// targeted pop, compacting the ring when stale tokens outnumber live
// ones (live tokens == pending, so the ring stays within 2× the
// outstanding message count, amortized O(1) per pop).
func (ib *inbox) noteStale(src int) {
	if ib.stale == nil {
		ib.stale = make([]int32, len(ib.q))
	}
	ib.stale[src]++
	ib.staleTotal++
	if 2*ib.staleTotal > ib.olen {
		w := 0
		for i := 0; i < ib.olen; i++ {
			s := ib.order[(ib.ohead+i)&(len(ib.order)-1)]
			if ib.stale[s] > 0 {
				ib.stale[s]--
				continue
			}
			ib.order[(ib.ohead+w)&(len(ib.order)-1)] = s
			w++
		}
		ib.olen = w
		ib.staleTotal = 0
	}
}

func (ib *inbox) pushOrder(src int) {
	if ib.olen == len(ib.order) {
		norder := make([]int32, max(8, 2*len(ib.order)))
		for i := 0; i < ib.olen; i++ {
			norder[i] = ib.order[(ib.ohead+i)&(len(ib.order)-1)]
		}
		ib.order = norder
		ib.ohead = 0
	}
	ib.order[(ib.ohead+ib.olen)&(len(ib.order)-1)] = int32(src)
	ib.olen++
}

func (ib *inbox) popOrder() int {
	src := ib.order[ib.ohead]
	ib.ohead = (ib.ohead + 1) & (len(ib.order) - 1)
	ib.olen--
	return int(src)
}

// counterShard is one rank's message/byte tally, padded to its own cache
// line pair so concurrent senders never false-share. Each shard is written
// only by the goroutine running that rank and read in Finish, which runs
// after every process has returned — the world's WaitGroup provides the
// happens-before edge, so no atomics are needed.
type counterShard struct {
	msgs  int64
	bytes int64
	_     [112]byte
}

// fabric is the allocated substance of a mailbox: inboxes, queue headers,
// and counter shards. It is separated from the mailbox so Finish can
// return it to a size-keyed pool and the next same-sized world (the
// common case in sweeps and benchmark loops) skips construction entirely.
type fabric struct {
	n        int
	inboxes  []inbox
	counters []counterShard
	queues   []pairQueue // backing store: inboxes[d].q = queues[d*n:(d+1)*n]
}

func newFabric(n int) *fabric {
	f := &fabric{
		n:        n,
		inboxes:  make([]inbox, n),
		counters: make([]counterShard, n),
		queues:   make([]pairQueue, n*n),
	}
	for d := range f.inboxes {
		ib := &f.inboxes[d]
		ib.cond.L = &ib.mu
		ib.q = f.queues[d*n : (d+1)*n : (d+1)*n]
	}
	return f
}

// reset clears leftover state (a run may finish with undrained messages)
// while keeping every ring's storage, then drops payload references so
// pooling cannot pin application data.
func (f *fabric) reset() {
	for d := range f.inboxes {
		ib := &f.inboxes[d]
		for s := range ib.q {
			q := &ib.q[s]
			for q.n > 0 {
				q.pop()
			}
			q.head = 0
		}
		ib.pending = 0
		ib.waiting = false
		ib.ohead, ib.olen = 0, 0
		for s := range ib.stale {
			ib.stale[s] = 0
		}
		ib.staleTotal = 0
	}
	for i := range f.counters {
		f.counters[i] = counterShard{}
	}
}

// fabricPools pools fabrics by world size through per-size sync.Pools, so
// repeated same-sized worlds (sweep cells, benchmark iterations) reuse
// their predecessor's allocation and idle fabrics still age out with GC.
var fabricPools sync.Map // int (world size) -> *sync.Pool

func getFabric(n int) *fabric {
	if p, ok := fabricPools.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return v.(*fabric)
		}
	}
	return newFabric(n)
}

func putFabric(f *fabric) {
	f.reset()
	p, ok := fabricPools.Load(f.n)
	if !ok {
		p, _ = fabricPools.LoadOrStore(f.n, &sync.Pool{})
	}
	p.(*sync.Pool).Put(f)
}

// mailbox is the rank-to-rank FIFO fabric and message/byte accounting
// shared by every transport: backends differ in how they price messages,
// not in how they carry them. Message counting is sharded per sender and
// aggregated only in Finish; delivery goes through per-destination
// inboxes, so neither path takes a lock shared between unrelated ranks.
type mailbox struct {
	n int
	f *fabric
	// done is the run context's cancellation channel; nil when the context
	// can never be cancelled, which keeps the hot path free of any
	// cancellation checks.
	done <-chan struct{}
	// cause reads the run context's error once done is closed.
	cause func() error
	// cancelled flips when the run context is cancelled; blocked and
	// subsequently attempted operations observe it and raise the
	// cancellation sentinel.
	cancelled atomic.Bool
	// stopCancel deregisters the context watcher; Finish calls it.
	stopCancel func() bool
	// watchDone closes when the context watcher callback has finished;
	// release waits on it when the callback won a race with Finish.
	watchDone chan struct{}
}

func newMailbox(ctx context.Context, n int) *mailbox {
	mb := &mailbox{n: n, f: getFabric(n)}
	if ctx.Done() != nil {
		mb.done = ctx.Done()
		mb.cause = ctx.Err
		mb.watchDone = make(chan struct{})
		f := mb.f
		mb.stopCancel = context.AfterFunc(ctx, func() {
			defer close(mb.watchDone)
			mb.cancelled.Store(true)
			// Taking each inbox lock before broadcasting guarantees any
			// consumer that checked cancelled before the store is already
			// parked in Wait (it holds the lock between check and Wait),
			// so the wakeup cannot be lost. The callback captures the
			// fabric directly — release waits for watchDone before
			// pooling it, so f is never a recycled fabric here.
			for i := range f.inboxes {
				ib := &f.inboxes[i]
				ib.mu.Lock()
				ib.cond.Broadcast()
				ib.mu.Unlock()
			}
		})
	}
	return mb
}

// count records one cross-process message of the given size on the
// sender's shard. Only src's goroutine touches shard src, so this is a
// plain unsynchronized increment.
func (mb *mailbox) count(src, bytes int) {
	sh := &mb.f.counters[src]
	sh.msgs++
	sh.bytes += int64(bytes)
}

// totals aggregates the per-sender shards. Valid only after every process
// has returned (Finish time).
func (mb *mailbox) totals() (msgs, bytes int64) {
	for i := range mb.f.counters {
		sh := &mb.f.counters[i]
		msgs += sh.msgs
		bytes += sh.bytes
	}
	return msgs, bytes
}

// release deregisters the cancellation watcher and returns the fabric to
// the pool. The mailbox must not be used afterwards; transports call it
// from Finish, which the Transport contract places after every process
// has returned.
func (mb *mailbox) release() {
	if mb.stopCancel != nil {
		if !mb.stopCancel() {
			// The watcher callback already started (the context was
			// cancelled as the run finished): wait until it is done with
			// the fabric before handing the fabric to the pool.
			<-mb.watchDone
		}
		mb.stopCancel = nil
	}
	f := mb.f
	mb.f = nil
	putFabric(f)
}

// push enqueues a message on the src→dst FIFO. Inboxes are unbounded, so
// senders never block; a send attempted after the run's context is
// cancelled raises the cancellation sentinel instead.
func (mb *mailbox) push(src, dst int, m message) {
	if mb.done != nil && mb.cancelled.Load() {
		panic(canceled{mb.cause()})
	}
	ib := &mb.f.inboxes[dst]
	ib.mu.Lock()
	ib.q[src].push(m)
	ib.pushOrder(src)
	ib.pending++
	wake := ib.waiting
	ib.mu.Unlock()
	if wake {
		ib.cond.Signal()
	}
}

// wait parks dst's consumer until a sender signals, panicking with the
// cancellation sentinel (after releasing the lock — a waiting sender must
// be able to acquire it and observe the cancellation itself) when the run
// context is cancelled.
func (mb *mailbox) wait(ib *inbox) {
	if mb.done != nil && mb.cancelled.Load() {
		ib.mu.Unlock()
		panic(canceled{mb.cause()})
	}
	ib.waiting = true
	ib.cond.Wait()
	ib.waiting = false
}

// pop dequeues the next message on the src→dst FIFO, panicking when its
// tag differs from the expected one (a broken communication protocol). A
// cancelled run context raises the cancellation sentinel instead of
// waiting forever for a sender that will never come.
func (mb *mailbox) pop(src, dst, tag int) message {
	ib := &mb.f.inboxes[dst]
	ib.mu.Lock()
	q := &ib.q[src]
	for q.n == 0 {
		mb.wait(ib)
	}
	msg := q.pop()
	ib.pending--
	ib.noteStale(src)
	ib.mu.Unlock()
	if msg.tag != tag {
		panic(fmt.Sprintf("backend: process %d expected tag %d from %d, got %d", dst, tag, src, msg.tag))
	}
	return msg
}

// popAny dequeues the next message for dst from any source, returning
// the sender's rank: in cross-source arrival order when popAny is the
// inbox's only consumer (see the order field for the mixed-consumption
// caveat), always FIFO per source. The only panics it can raise are the
// protocol tag check and the cancellation sentinel.
func (mb *mailbox) popAny(dst, tag int) (int, message) {
	ib := &mb.f.inboxes[dst]
	ib.mu.Lock()
	for ib.pending == 0 {
		mb.wait(ib)
	}
	var src int
	for {
		src = ib.popOrder()
		if ib.q[src].n > 0 {
			break
		}
		// Excess token: its message was taken by a targeted pop (so it
		// is accounted in stale — settle the books as it leaves).
		ib.stale[src]--
		ib.staleTotal--
	}
	msg := ib.q[src].pop()
	ib.pending--
	ib.mu.Unlock()
	if msg.tag != tag {
		panic(fmt.Sprintf("backend: process %d expected tag %d from any source, got %d from %d",
			dst, tag, msg.tag, src))
	}
	return src, msg
}
