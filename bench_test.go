package repro

import (
	"sort"
	"testing"

	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/hostbench"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// The benchmarks below regenerate the paper's data figures, one per
// Benchmark function, at a reduced scale so `go test -bench=.` completes
// in minutes. Each reports the figure's headline number as a custom
// metric (simulated speedup at the figure's top processor count, or the
// relevant ratio). Run cmd/archbench for the full-scale tables.

// benchFigure runs a registered figure once per iteration and reports the
// given curve metric.
func benchFigure(b *testing.B, id string, scale float64, maxProcs int, metric func(*figures.Result) (string, float64)) {
	f, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("figure %s not registered", id)
	}
	opts := figures.Options{Scale: scale, MaxProcs: maxProcs, Dir: b.TempDir()}
	for i := 0; i < b.N; i++ {
		res, err := f.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && metric != nil {
			name, v := metric(res)
			b.ReportMetric(v, name)
		}
	}
}

func topSpeedup(curveIdx int) func(*figures.Result) (string, float64) {
	return func(r *figures.Result) (string, float64) {
		c := r.Curves[curveIdx]
		return "speedup@top", c.Points[len(c.Points)-1].Speedup
	}
}

// BenchmarkFig06Mergesort regenerates Figure 6 (traditional vs one-deep
// mergesort on the Intel Delta model).
func BenchmarkFig06Mergesort(b *testing.B) {
	benchFigure(b, "6", 0.25, 64, func(r *figures.Result) (string, float64) {
		trad, oneDeep := r.Curves[0], r.Curves[1]
		return "onedeep/traditional@64", oneDeep.SpeedupAt(64) / trad.SpeedupAt(64)
	})
}

// BenchmarkFig12FFT2D regenerates Figure 12 (2D FFT on the IBM SP model).
func BenchmarkFig12FFT2D(b *testing.B) {
	benchFigure(b, "12", 0.5, 32, topSpeedup(0))
}

// BenchmarkFig15Poisson regenerates Figure 15 (Poisson solver on the IBM
// SP model).
func BenchmarkFig15Poisson(b *testing.B) {
	benchFigure(b, "15", 0.5, 36, topSpeedup(0))
}

// BenchmarkFig16CFD regenerates Figure 16 (2D CFD on the Intel Delta
// model).
func BenchmarkFig16CFD(b *testing.B) {
	benchFigure(b, "16", 0.33, 100, topSpeedup(0))
}

// BenchmarkFig17FDTD regenerates Figure 17 (3D FDTD on the IBM SP model;
// the metric is the 18-vs-16-processor ratio, below 1 when the curve
// rolls over as in the paper).
func BenchmarkFig17FDTD(b *testing.B) {
	benchFigure(b, "17", 1, 18, func(r *figures.Result) (string, float64) {
		c := r.Curves[0]
		return "s18/s16", c.SpeedupAt(18) / c.SpeedupAt(16)
	})
}

// BenchmarkFig18Swirl regenerates Figure 18 (spectral code with the
// paging model; the metric is the relative speedup at twice the base —
// above 2 means the super-linear anomaly reproduced).
func BenchmarkFig18Swirl(b *testing.B) {
	benchFigure(b, "18", 0.5, 40, func(r *figures.Result) (string, float64) {
		return "rel-speedup@2x", r.Curves[0].SpeedupAt(10)
	})
}

// BenchmarkFig19ShockImage regenerates the Figure 19 density image.
func BenchmarkFig19ShockImage(b *testing.B) { benchFigure(b, "19", 0.25, 0, nil) }

// BenchmarkFig20ShockPanels regenerates the Figure 20 panels.
func BenchmarkFig20ShockPanels(b *testing.B) { benchFigure(b, "20", 0.25, 0, nil) }

// BenchmarkFig21SwirlImage regenerates the Figure 21 image.
func BenchmarkFig21SwirlImage(b *testing.B) { benchFigure(b, "21", 0.5, 0, nil) }

// BenchmarkAblationReduce compares recursive-doubling and
// gather/broadcast reductions (DESIGN.md ablation A1).
func BenchmarkAblationReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.AblationReduce([]int{4, 16, 64}, 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].B/rows[len(rows)-1].A, "gb/rd@64")
		}
	}
}

// BenchmarkAblationParams compares centralized and replicated splitter
// strategies (A2).
func BenchmarkAblationParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationParams(1<<16, []int{16, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLayout compares 1D and 2D Poisson decompositions (A3).
func BenchmarkAblationLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationLayout(96, 20, []int{16, 36}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllGather compares the §2.4 all-gather formulations
// (A4).
func BenchmarkAblationAllGather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationAllGather([]int{4, 16, 64}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineSweep runs the A5 cross-architecture ablation.
func BenchmarkMachineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := figures.MachineSweep(1<<15, []int{1, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(curves[3].SpeedupAt(64)/curves[2].SpeedupAt(64), "smp/workstations@64")
		}
	}
}

// BenchmarkPipelineOverlap measures the archetype-composition extension:
// the metric is lockstep time over overlapped time (>1 means composition
// pays).
func BenchmarkPipelineOverlap(b *testing.B) {
	fill := func(f, i, j int) complex128 { return complex(float64(i+f), float64(j)) }
	for i := 0; i < b.N; i++ {
		over, _, err := pipeline.Makespan(8, 64, 6, pipeline.Overlapped, machine.IBMSP(), fill)
		if err != nil {
			b.Fatal(err)
		}
		lock, _, err := pipeline.Makespan(8, 64, 6, pipeline.Lockstep, machine.IBMSP(), fill)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(lock/over, "lockstep/overlapped")
		}
	}
}

// BenchmarkKnapsackStrategies measures both parallel branch-and-bound
// strategies on the same instance.
func BenchmarkKnapsackStrategies(b *testing.B) {
	items := bnb.RandomItems(22, 30, 41)
	const capacity = 180
	spec := bnb.Knapsack(items, capacity)
	for i := 0; i < b.N; i++ {
		var sync, async float64
		res, err := core.Simulate(8, machine.IBMSP(), func(p *spmd.Proc) {
			bnb.SolveSync(p, spec, 16)
		})
		if err != nil {
			b.Fatal(err)
		}
		sync = res.Makespan
		res, err = core.Simulate(8, machine.IBMSP(), func(p *spmd.Proc) {
			bnb.SolveAsync(p, spec, 64)
		})
		if err != nil {
			b.Fatal(err)
		}
		async = res.Makespan
		if i == 0 {
			b.ReportMetric(sync/async, "sync/async-time")
		}
	}
}

// --- Host-machine microbenchmarks (real time, not simulated): the
// building blocks whose real cost dominates test runtime. The bodies
// live in internal/hostbench so `go test -bench` here and the
// BENCH_fabric.json baseline emitted by `archbench -json` measure the
// same code; CI runs these with -benchtime=1x as a smoke gate.

// BenchmarkRealSequentialMergesort measures the real mergesort.
func BenchmarkRealSequentialMergesort(b *testing.B) { hostbench.BenchSequentialMergesort(b) }

// BenchmarkRealStdlibSort is the stdlib reference for the above.
func BenchmarkRealStdlibSort(b *testing.B) {
	data := sortapp.RandomInts(1<<17, 5)
	buf := make([]int32, len(data))
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		sort.Slice(buf, func(x, y int) bool { return buf[x] < buf[y] })
	}
}

// BenchmarkRealOneDeepWorld measures the end-to-end host cost of one
// simulated 16-process one-deep mergesort world (goroutines + fabric +
// real sorting).
func BenchmarkRealOneDeepWorld(b *testing.B) { hostbench.BenchOneDeepWorld(b) }

// BenchmarkRealAllReduce measures the host cost of the recursive-doubling
// all-reduce across 32 goroutine processes.
func BenchmarkRealAllReduce(b *testing.B) { hostbench.BenchAllReduce(b) }

// BenchmarkRealWorldConstruction256 measures pure fabric construction and
// teardown for a 256-process world.
func BenchmarkRealWorldConstruction256(b *testing.B) { hostbench.BenchWorldConstruction256(b) }

// BenchmarkRealPingPong measures per-message latency on the shared-memory
// backend (1000 round trips per op): the in-process half of the
// loopback-vs-shared-memory latency table in EXPERIMENTS.md.
func BenchmarkRealPingPong(b *testing.B) { hostbench.BenchRealPingPong(b) }

// --- Distributed-backend micros: the same fabric measurements with every
// message crossing OS-process boundaries over loopback TCP. Worker
// processes self-spawn from this test binary (see TestMain); the bodies
// live in internal/hostbench so these and the BENCH_dist.json baseline
// emitted by `archbench -json -backend=dist` measure the same code.

// BenchmarkDistWorldStartup4 measures spawning, handshaking, and tearing
// down a 4-worker dist world (pure substrate cost).
func BenchmarkDistWorldStartup4(b *testing.B) { hostbench.BenchDistWorldStartup(b) }

// BenchmarkDistOneDeepWorld measures a 4-process one-deep mergesort with
// all messages over loopback TCP.
func BenchmarkDistOneDeepWorld(b *testing.B) { hostbench.BenchDistOneDeepWorld(b) }

// BenchmarkDistAllReduce measures the recursive-doubling all-reduce
// across 8 worker processes.
func BenchmarkDistAllReduce(b *testing.B) { hostbench.BenchDistAllReduce(b) }

// BenchmarkDistPingPong measures per-message latency across worker
// processes over loopback TCP (1000 round trips per op).
func BenchmarkDistPingPong(b *testing.B) { hostbench.BenchDistPingPong(b) }
