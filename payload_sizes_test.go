package repro

import (
	"testing"

	"repro/internal/closest"
	"repro/internal/hull"
	"repro/internal/skyline"
	"repro/internal/spmd"
)

// TestAppPayloadsArePricedExplicitly is the vet-style guard on BytesOf's
// silent one-word default: every payload type the registered apps
// actually put on the wire must hit an explicit BytesOf case or
// implement spmd.Sized. A new app payload outside this set under-counts
// communication volume without any error; extend BytesOf (or implement
// Sized) and add the type here.
//
// Wrapper types the runtime sends on the apps' behalf (collective's
// partial[T], meshspectral's subBlock[T]/slab3[T], bnb's asyncMsg) are
// unexported Sized implementations whose VBytes recurse into BytesOf for
// their inner payload; the inner types are what can silently default, so
// those are listed per wrapper.
func TestAppPayloadsArePricedExplicitly(t *testing.T) {
	payloads := []struct {
		app string
		v   any
	}{
		// sortapp (mergesort, quicksort): blocks, samples, splitters, and
		// the all-to-all repartition all ship []int32.
		{"mergesort/quicksort", []int32{1, 2, 3}},
		// fft: redistributed sub-blocks and halo exchanges carry
		// []complex128; the verification reduce carries float64.
		{"fft", []complex128{1}},
		{"fft", float64(0)},
		// poisson: halo exchanges carry []float64; the residual reduce
		// carries float64.
		{"poisson", []float64{1}},
		{"poisson", float64(0)},
		// cfd: Cell = [4]float64, so halos carry [][4]float64.
		{"cfd", [][4]float64{{1, 2, 3, 4}}},
		// airshed: Conc = [3]float64 halos.
		{"airshed", [][3]float64{{1, 2, 3}}},
		// fdtd: Vec3 = [3]float64 slabs (slab3's inner Data).
		{"fdtd", [][3]float64{{1, 2, 3}}},
		// swirl: spectral grids exchange []complex128 and []float64.
		{"swirl", []complex128{1}},
		{"swirl", []float64{1}},
		// hull: gathered local hulls are hull.Pts (Sized).
		{"hull", hull.Pts{}},
		// closest: samples/points are closest.Pts, the reduced result a
		// closest.Pair (both Sized).
		{"closest", closest.Pts{}},
		{"closest", closest.Pair{}},
		// skyline: gathered partial skylines are skyline.Skyline (Sized).
		{"skyline", skyline.Skyline{}},
		// bnb (driver workload): the sync solver all-reduces
		// [2]int64{expanded, queued} inside collective's partial wrapper.
		{"bnb", [2]int64{1, 2}},
		// stream apps: data batches are flat []T — streamfft frames are
		// []complex128, streamhist samples/histograms []float64. Credit
		// returns and EOS markers ship nil payloads ("runtime" below).
		{"streamfft", []complex128{1}},
		{"streamhist", []float64{1}},
		// collective barriers and pipeline acks ship nil payloads.
		{"runtime", nil},
	}
	for _, tc := range payloads {
		if !spmd.SizeKnown(tc.v) {
			t.Errorf("%s payload %T is priced by BytesOf's silent one-word default; add an explicit case or implement spmd.Sized", tc.app, tc.v)
		}
	}
}
