package repro

import (
	"os"
	"testing"

	"repro/internal/backend/dist"
	"repro/internal/elastic"
)

// TestMain lets this test binary self-spawn as dist workers for the
// BenchmarkDist* suite (the dist backend's default mode re-executes the
// current binary; MaybeWorker diverts those children into the worker
// loop).
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	os.Exit(m.Run())
}
