package repro

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bnb"
	"repro/internal/cfd"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/onedeep"
	"repro/internal/pipeline"
	"repro/internal/poisson"
	"repro/internal/skyline"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// The integration tests exercise whole-paper workflows across module
// boundaries: both archetypes, the collectives beneath them, the machine
// models, and the method's correctness contract (version 1 ≡ version 2),
// in a single world where possible.

// TestEndToEndMethodWorkflow walks the paper's §1.2 program-development
// strategy once for each archetype, asserting the semantics-preservation
// property at every stage.
func TestEndToEndMethodWorkflow(t *testing.T) {
	model := machine.IBMSP()

	// --- One-deep archetype on mergesort.
	data := sortapp.RandomInts(20000, 123)
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	const procs = 6
	blocks := sortapp.BlockDistribute(data, procs)
	v1 := onedeep.RunV1(core.Sequential, spec, blocks)
	v1c := onedeep.RunV1(core.Concurrent, spec, blocks)
	if !reflect.DeepEqual(v1, v1c) {
		t.Fatal("one-deep: V1 modes disagree")
	}
	v2 := make([][]int32, procs)
	if _, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		v2[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("one-deep: V2 differs from V1")
	}

	// --- Mesh-spectral archetype on the Poisson solver.
	pr := poisson.Manufactured(33, 33, 1e-6, 2000)
	uSeq, rSeq := poisson.SolveV1(core.Sequential, pr)
	var identical bool
	if _, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		g, r := poisson.SolveSPMD(p, pr, meshspectral.NearSquare(procs))
		full := meshspectral.GatherGrid(g, 0)
		if p.Rank() == 0 {
			identical = r == rSeq
			for k := range full.Data {
				if full.Data[k] != uSeq.Data[k] {
					identical = false
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Fatal("mesh-spectral: V2 differs from V1")
	}
}

// TestMixedArchetypesInOneWorld runs both archetypes plus a reduction in
// the same world — the usage pattern of a real application combining
// library pieces.
func TestMixedArchetypesInOneWorld(t *testing.T) {
	const procs = 4
	data := sortapp.RandomInts(4000, 5)
	blocks := sortapp.BlockDistribute(data, procs)
	spec := sortapp.OneDeepQuicksort(onedeep.Centralized)
	var medianOfMaxes float64
	_, err := core.Simulate(procs, machine.IntelDelta(), func(p *spmd.Proc) {
		// Sort with one archetype...
		sorted := onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		// ...then feed a grid computation whose size depends on it, and
		// reduce the result.
		localMax := float64(-1 << 31)
		if len(sorted) > 0 {
			localMax = float64(sorted[len(sorted)-1])
		}
		g := meshspectral.New2D[float64](p, 16, 16, meshspectral.Rows(procs), 1)
		g.Fill(func(i, j int) float64 { return localMax })
		g.ExchangeBoundary()
		m := collective.AllReduce(p, localMax, math.Max)
		if p.Rank() == 0 {
			medianOfMaxes = m
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(sortapp.MergeSort(core.Nop, data)[len(data)-1])
	if medianOfMaxes != want {
		t.Fatalf("global max %g != %g", medianOfMaxes, want)
	}
}

// TestSkylineThroughFullStack runs the skyline app on the workstation
// model (exercising a third machine profile end to end).
func TestSkylineThroughFullStack(t *testing.T) {
	bs := skyline.RandomBuildings(150, 77, 900)
	want := skyline.Compute(core.Nop, bs)
	const procs = 5
	blocks := make([][]skyline.Building, procs)
	for i := range blocks {
		blocks[i] = bs[i*len(bs)/procs : (i+1)*len(bs)/procs]
	}
	outs := make([]skyline.Skyline, procs)
	res, err := core.Simulate(procs, machine.Workstations(), func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, skyline.Spec(onedeep.Replicated), blocks[p.Rank()])
	})
	if err != nil {
		t.Fatal(err)
	}
	if !skyline.Equal(skyline.Assemble(outs), want) {
		t.Fatal("skyline through workstation model differs from sequential")
	}
	if res.Msgs == 0 {
		t.Fatal("expected real communication")
	}
}

// TestComposedPipelineMatchesMonolithicFFT cross-checks the composition
// extension against the plain mesh-spectral FFT.
func TestComposedPipelineMatchesMonolithicFFT(t *testing.T) {
	const n, procs = 32, 4
	fill := func(f, i, j int) complex128 {
		return complex(float64(i%5)-2, float64(j%3)-1)
	}
	_, frames, err := pipeline.Makespan(procs, n, 2, pipeline.Overlapped, machine.IBMSP(), fill)
	if err != nil {
		t.Fatal(err)
	}
	for f, frame := range frames {
		var mono []complex128
		if _, err := core.Simulate(procs, machine.IBMSP(), func(p *spmd.Proc) {
			g := meshspectral.New2D[complex128](p, n, n, meshspectral.Rows(procs), 0)
			g.Fill(func(i, j int) complex128 { return fill(f, i, j) })
			out := fft.TwoDSPMD(p, g, false)
			full := meshspectral.GatherGrid(out, 0)
			if p.Rank() == 0 {
				mono = full.Data
			}
		}); err != nil {
			t.Fatal(err)
		}
		for k := range mono {
			if frame.Data[k] != mono[k] {
				t.Fatalf("frame %d: pipeline differs from monolithic FFT at %d", f, k)
			}
		}
	}
}

// TestCFDOnSMPModel exercises a PDE app under the shared-memory profile.
func TestCFDOnSMPModel(t *testing.T) {
	pm := cfd.DefaultParams(32, 16)
	seq := cfd.NewSeq(pm)
	seq.Run(core.Nop, 5)
	var same bool
	if _, err := core.Simulate(4, machine.SMP(), func(p *spmd.Proc) {
		s := cfd.NewSPMD(p, pm, meshspectral.Blocks(2, 2))
		s.Run(5)
		full := meshspectral.GatherGrid(s.U, 0)
		if p.Rank() == 0 {
			same = true
			for k := range full.Data {
				if full.Data[k] != seq.U.Data[k] {
					same = false
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("CFD on SMP model differs from sequential")
	}
}

// TestBnBAcrossMachines checks the branch-and-bound optimum is
// machine-independent (only timing changes with the model).
func TestBnBAcrossMachines(t *testing.T) {
	items := bnb.RandomItems(15, 18, 3)
	want := float64(bnb.KnapsackDP(items, 70))
	for name, m := range machine.Profiles() {
		var got bnb.Result
		if _, err := core.Simulate(4, m, func(p *spmd.Proc) {
			r := bnb.SolveSync(p, bnb.Knapsack(items, 70), 4)
			if p.Rank() == 0 {
				got = r
			}
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Best != want {
			t.Fatalf("%s: optimum %g != %g", name, got.Best, want)
		}
	}
}
